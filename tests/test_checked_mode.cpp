// Checked diagnostic build: seeded violations proving each tripwire fires
// with precise blame, plus the guard that a default (LEGW_CHECKED=OFF) build
// keeps the element-level checks compiled out. The same file is compiled in
// both builds; expectations flip on check::kCheckedBuild / the
// LEGW_CHECKED_BUILD macro. The NaN/Inf tripwires are runtime-toggleable, so
// those violations are provable in every build via TripwireScope.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ag/ops.hpp"
#include "ag/variable.hpp"
#include "check/check.hpp"
#include "optim/optimizer.hpp"

namespace legw::check {
namespace {

using ag::Node;
using ag::Variable;
using core::Tensor;

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

TEST(CheckedMode, BuildFlagMatchesCompileDefinition) {
#ifdef LEGW_CHECKED_BUILD
  EXPECT_TRUE(kCheckedBuild);
#else
  // The guard for release builds: the constant is false, so every
  // `if constexpr (kCheckedBuild)` body and the bounds-checked operator[]
  // branch are compiled out, and the tripwires default to off.
  EXPECT_FALSE(kCheckedBuild);
  EXPECT_FALSE(tripwires_enabled());
#endif
}

TEST(CheckedMode, TripwireScopeSetsAndRestores) {
  const bool before = tripwires_enabled();
  {
    TripwireScope on(true);
    EXPECT_TRUE(tripwires_enabled());
    {
      TripwireScope off(false);
      EXPECT_FALSE(tripwires_enabled());
    }
    EXPECT_TRUE(tripwires_enabled());
  }
  EXPECT_EQ(tripwires_enabled(), before);
}

TEST(CheckedMode, StepIndexRoundTrips) {
  const i64 before = step_index();
  set_step_index(42);
  EXPECT_EQ(step_index(), 42);
  set_step_index(before);
}

TEST(CheckedMode, FirstNonFiniteFindsNanAndInf) {
  float clean[3] = {1.0f, -2.0f, 0.0f};
  EXPECT_EQ(first_non_finite(clean, 3), -1);
  float with_nan[3] = {1.0f, kNan, kNan};
  EXPECT_EQ(first_non_finite(with_nan, 3), 1);
  float with_inf[2] = {-kInf, 0.0f};
  EXPECT_EQ(first_non_finite(with_inf, 2), 0);
  Tensor t({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_TRUE(all_finite(t));
  t.data()[3] = kInf;
  EXPECT_FALSE(all_finite(t));
}

TEST(CheckedMode, TensorVersionBumpsOnlyOnMutation) {
  Tensor t({2}, {1.0f, 2.0f});
  const u32 v0 = t.version();
  // Reads must not bump: backward closures read parent values through
  // data()/operator[], and a bump there would make every graph stale.
  (void)t[0];
  (void)t.data();
  EXPECT_EQ(t.version(), v0);
  t.fill_(3.0f);
  EXPECT_GT(t.version(), v0);
  const u32 v1 = t.version();
  t.add_(Tensor({2}, {1.0f, 1.0f}));
  EXPECT_GT(t.version(), v1);
  const u32 v2 = t.version();
  t = Tensor({2}, {9.0f, 9.0f});  // whole-tensor assignment is a mutation too
  EXPECT_GT(t.version(), v2);
}

// ---- seeded violations -----------------------------------------------------
// Each tripwire must actually fire, with the blame string the docs promise.

TEST(CheckedModeDeath, ShapeMismatchIsBlamedByOp) {
  Variable a = Variable::leaf(Tensor({2, 3}), true);
  Variable b = Variable::leaf(Tensor({3, 2}), true);
  EXPECT_DEATH(ag::add(a, b), "add: shape mismatch");
}

TEST(CheckedModeDeath, ForwardNanIsBlamedByProducingOp) {
  TripwireScope on(true);
  // Leaf creation never scans; the first *op* consuming the NaN must blame
  // itself as the producer of a non-finite output.
  Variable x = Variable::leaf(Tensor({2}, {1.0f, kNan}), true);
  EXPECT_DEATH(ag::scale(x, 2.0f),
               "non-finite tripwire.*scale\\.out.*forward of scale");
}

TEST(CheckedModeDeath, InjectedGradientNanIsBlamedInBackward) {
  TripwireScope on(true);
  Variable x = Variable::leaf(Tensor({2}, {1.0f, 2.0f}), true);
  Variable y = ag::make_op_node("nan_grad_op", Tensor({1}, {3.0f}), {x},
                                [](Node& n) {
                                  Tensor& g = n.parents[0]->ensure_grad();
                                  g.data()[1] = kNan;
                                });
  EXPECT_DEATH(ag::backward(y),
               "non-finite tripwire.*leaf\\.grad.*backward of nan_grad_op");
}

TEST(CheckedModeDeath, InPlaceMutationAfterCaptureAbortsBackward) {
  TripwireScope on(true);
  Variable x = Variable::leaf(Tensor({2}, {1.0f, 2.0f}), true);
  Variable loss = ag::sum_all(ag::mul(x, x));
  x.mutable_value().fill_(5.0f);
  EXPECT_DEATH(
      ag::backward(loss),
      "stale graph: input .* of op '(mul|sum_all)' .* mutated in place");
}

TEST(CheckedModeDeath, OptimizerStepBlamesParamAndStepCount) {
  TripwireScope on(true);
  Variable w = Variable::leaf(Tensor({2}, {1.0f, 2.0f}), true);
  optim::Sgd opt({w});
  opt.set_lr(0.1f);
  w.mutable_grad().fill_(1.0f);
  opt.step();  // finite update: must pass
  EXPECT_EQ(opt.steps(), 1);
  w.mutable_grad().fill_(kInf);
  EXPECT_DEATH(opt.step(),
               "non-finite tripwire.*param\\[0\\]\\.value.*sgd\\.step 2");
}

TEST(CheckedModeDeath, OptimizerStepIsSilentWhenTripwiresOff) {
  TripwireScope off(false);
  Variable w = Variable::leaf(Tensor({2}, {1.0f, 2.0f}), true);
  optim::Sgd opt({w});
  opt.set_lr(0.1f);
  w.mutable_grad().fill_(kInf);
  opt.step();  // param is now non-finite, but nothing is armed
  EXPECT_FALSE(all_finite(w.value()));
}

#ifdef LEGW_CHECKED_BUILD
TEST(CheckedModeDeath, OutOfBoundsElementAccessAborts) {
  Tensor t({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_DEATH((void)t[4], "index out of bounds: 4");
  EXPECT_DEATH((void)t[-1], "index out of bounds: -1");
}
#endif

}  // namespace
}  // namespace legw::check
