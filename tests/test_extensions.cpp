// LAMB optimizer, gradient-noise-scale estimator, Recorder, and Flags.
#include <gtest/gtest.h>

#include <cmath>

#include "ag/ops.hpp"
#include "analysis/gradient_noise.hpp"
#include "core/flags.hpp"
#include "optim/optimizer.hpp"
#include "train/recorder.hpp"

namespace legw {
namespace {

using ag::Variable;
using core::Rng;
using core::Tensor;

// ---- LAMB -----------------------------------------------------------------

TEST(Lamb, FirstStepScalesWithTrustRatio) {
  // ||w|| = 2; first Adam update is ~sign(g) per element so ||update|| ~ 1
  // (one active coordinate, wd 0) -> trust ratio ~ 2, step ~ lr * 2.
  Variable p = Variable::leaf(Tensor({2}, {2.0f, 0.0f}), true);
  p.mutable_grad()[1] = 0.5f;
  optim::Lamb opt({p}, 0.9f, 0.999f, 1e-6f, /*weight_decay=*/0.0f);
  opt.set_lr(0.01f);
  opt.step();
  // update vector ≈ (0, 1); trust = 2/1; w1 -= 0.01 * 2 * 1.
  EXPECT_NEAR(p.value()[1], -0.02f, 2e-3f);
  EXPECT_NEAR(p.value()[0], 2.0f, 1e-6f);
}

TEST(Lamb, WeightDecayEntersUpdateNorm) {
  Variable p = Variable::leaf(Tensor({1}, {1.0f}), true);
  p.mutable_grad()[0] = 0.0f;
  optim::Lamb opt({p}, 0.9f, 0.999f, 1e-6f, /*weight_decay=*/0.1f);
  opt.set_lr(0.1f);
  opt.step();
  // update = wd*w = 0.1; trust = |w|/|update| = 10; w -= 0.1*10*0.1 = 0.1.
  EXPECT_NEAR(p.value()[0], 0.9f, 1e-4f);
}

TEST(Lamb, FactoryAndConvergence) {
  Rng rng(42);
  Variable w = Variable::leaf(Tensor::randn({4}, rng), true);
  Variable a = Variable::constant(Tensor({4}, {1.0f, 2.0f, 5.0f, 10.0f}));
  auto opt = optim::make_optimizer("lamb", {w});
  EXPECT_EQ(opt->name(), "lamb");
  opt->set_lr(0.05f);
  float initial = 0.0f, final_loss = 0.0f;
  for (int it = 0; it < 400; ++it) {
    opt->zero_grad();
    Variable loss = ag::scale(ag::sum_all(ag::mul(a, ag::mul(w, w))), 0.5f);
    if (it == 0) initial = loss.value()[0];
    final_loss = loss.value()[0];
    ag::backward(loss);
    opt->step();
  }
  EXPECT_LT(final_loss, 0.05f * initial);
}

// ---- gradient noise scale ---------------------------------------------------

TEST(NoiseScale, ExactOnSyntheticModel) {
  // Construct E[||g_B||²] = G2 + S/B exactly and verify recovery.
  const double G2 = 4.0, S = 80.0;
  auto norm_at = [&](i64 batch) {
    return G2 + S / static_cast<double>(batch);
  };
  auto e = analysis::estimate_noise_scale(16, 256, norm_at);
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(e.trace_sigma, S, 1e-9);
  EXPECT_NEAR(e.grad_sq_norm, G2, 1e-9);
  EXPECT_NEAR(e.noise_scale, S / G2, 1e-9);
}

TEST(NoiseScale, InvalidWhenBigBatchNoisier) {
  // If the big batch measures a *larger* norm, tr(Σ) < 0: flagged invalid.
  auto norm_at = [](i64 batch) { return static_cast<double>(batch); };
  auto e = analysis::estimate_noise_scale(8, 64, norm_at);
  EXPECT_FALSE(e.valid);
  EXPECT_EQ(e.noise_scale, 0.0);
}

TEST(NoiseScale, AveragedEstimatorOnRealGradients) {
  // Linear regression gradients: noise scale must come out positive and
  // finite on an actual stochastic objective.
  Rng rng(7);
  const i64 n = 512, dim = 4;
  Tensor x = Tensor::randn({n, dim}, rng);
  Tensor y({n, 1});
  for (i64 i = 0; i < n; ++i) {
    y[i] = x[i * dim] * 2.0f - x[i * dim + 1] +
           static_cast<float>(rng.normal(0.0, 0.5));
  }
  Variable w = Variable::leaf(Tensor::zeros({dim, 1}), true);
  Rng draw_rng(9);
  auto grad_sq = [&](i64 batch, int) {
    // Fresh random batch each draw.
    Tensor xb({batch, dim});
    Tensor yb({batch, 1});
    for (i64 i = 0; i < batch; ++i) {
      const i64 src = static_cast<i64>(draw_rng.uniform_int(static_cast<u64>(n)));
      for (i64 d = 0; d < dim; ++d) xb[i * dim + d] = x[src * dim + d];
      yb[i] = y[src];
    }
    w.zero_grad();
    Variable err = ag::sub(ag::matmul(Variable::constant(xb), w),
                           Variable::constant(yb));
    ag::backward(ag::mean_all(ag::mul(err, err)));
    const double norm = w.grad().l2_norm();
    return norm * norm;
  };
  auto e = analysis::estimate_noise_scale_averaged(4, 256, 30, grad_sq);
  ASSERT_TRUE(e.valid);
  EXPECT_GT(e.noise_scale, 0.0);
  EXPECT_LT(e.noise_scale, 1e4);
}

// ---- Recorder -----------------------------------------------------------------

TEST(Recorder, RecordsAndRendersCsv) {
  train::Recorder rec;
  EXPECT_TRUE(rec.empty());
  rec.record("loss", 0, 2.5);
  rec.record("loss", 1, 1.25);
  rec.record("lr", 0, 0.1);
  EXPECT_FALSE(rec.empty());
  ASSERT_EQ(rec.series("loss").size(), 2u);
  EXPECT_EQ(rec.series("loss")[1].step, 1);
  EXPECT_DOUBLE_EQ(rec.series("loss")[1].value, 1.25);
  const auto names = rec.series_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "loss");  // lexicographic
  EXPECT_EQ(names[1], "lr");
  const std::string csv = rec.to_csv();
  EXPECT_NE(csv.find("series,step,value"), std::string::npos);
  EXPECT_NE(csv.find("loss,1,1.25"), std::string::npos);
}

TEST(Recorder, WriteCsvRoundTrip) {
  train::Recorder rec;
  rec.record("acc", 5, 0.75);
  const std::string path = "/tmp/legw_test_recorder.csv";
  ASSERT_TRUE(rec.write_csv(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256] = {};
  const std::size_t got = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  ASSERT_GT(got, 0u);
  EXPECT_NE(std::string(buf).find("acc,5,0.75"), std::string::npos);
}

TEST(Recorder, RejectsDecreasingSteps) {
  train::Recorder rec;
  rec.record("x", 3, 1.0);
  EXPECT_DEATH(rec.record("x", 2, 1.0), "non-decreasing");
}

// ---- Flags -------------------------------------------------------------------------

TEST(Flags, ParsesAllForms) {
  const char* argv[] = {"prog",      "--batch", "64",   "--lr=0.5",
                        "positional", "--verbose"};
  core::Flags flags(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.program(), "prog");
  EXPECT_EQ(flags.get_int("batch", 0), 64);
  EXPECT_DOUBLE_EQ(flags.get_double("lr", 0.0), 0.5);
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_FALSE(flags.get_bool("quiet", false));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
  EXPECT_TRUE(flags.has("batch"));
  EXPECT_FALSE(flags.has("missing"));
  EXPECT_EQ(flags.get_string("missing", "fallback"), "fallback");
}

TEST(Flags, RejectsMalformedNumbers) {
  const char* argv[] = {"prog", "--n", "abc"};
  core::Flags flags(3, const_cast<char**>(argv));
  EXPECT_DEATH(flags.get_int("n", 0), "expects an integer");
}

}  // namespace
}  // namespace legw
