// fp16 compression (exact rounding semantics) and the LR range test.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "analysis/lr_finder.hpp"
#include "core/rng.hpp"
#include "dist/compression.hpp"

namespace legw {
namespace {

using core::Rng;
using core::Tensor;

TEST(Fp16, ExactValuesRoundTrip) {
  // Values exactly representable in binary16 survive the round trip.
  for (float v : {0.0f, -0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, 65504.0f,
                  -65504.0f, 0.25f, 6.1035156e-5f /* min normal half */}) {
    EXPECT_EQ(dist::half_to_float(dist::float_to_half(v)), v) << v;
  }
}

TEST(Fp16, RelativeErrorBoundedForNormals) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const float v = static_cast<float>(rng.uniform(-100.0, 100.0));
    if (std::abs(v) < 1e-3f) continue;
    const float rt = dist::half_to_float(dist::float_to_half(v));
    // binary16 has 11 significand bits: relative error <= 2^-11.
    EXPECT_NEAR(rt, v, std::abs(v) * (1.0f / 2048.0f) + 1e-9f);
  }
}

TEST(Fp16, OverflowToInfAndNanPreserved) {
  EXPECT_TRUE(std::isinf(dist::half_to_float(dist::float_to_half(1e6f))));
  EXPECT_TRUE(std::isinf(dist::half_to_float(dist::float_to_half(-1e6f))));
  EXPECT_LT(dist::half_to_float(dist::float_to_half(-1e6f)), 0.0f);
  EXPECT_TRUE(std::isnan(dist::half_to_float(
      dist::float_to_half(std::numeric_limits<float>::quiet_NaN()))));
  EXPECT_TRUE(std::isinf(dist::half_to_float(
      dist::float_to_half(std::numeric_limits<float>::infinity()))));
}

TEST(Fp16, SubnormalsRepresented) {
  // 2^-24 is the smallest positive subnormal half.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(dist::half_to_float(dist::float_to_half(tiny)), tiny);
  // Halfway below it underflows to zero.
  EXPECT_EQ(dist::half_to_float(dist::float_to_half(tiny / 4.0f)), 0.0f);
}

TEST(Fp16, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half (1 + 2^-10):
  // ties-to-even rounds to 1.0 (even mantissa).
  const float halfway = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(dist::half_to_float(dist::float_to_half(halfway)), 1.0f);
  // Slightly above halfway rounds up.
  const float above = 1.0f + std::ldexp(1.5f, -11);
  EXPECT_EQ(dist::half_to_float(dist::float_to_half(above)),
            1.0f + std::ldexp(1.0f, -10));
}

TEST(Fp16, TensorCompressRoundTrip) {
  Rng rng(2);
  Tensor t = Tensor::randn({64}, rng);
  std::vector<u16> wire;
  dist::compress_fp16(t, wire);
  EXPECT_EQ(wire.size(), 64u);
  Tensor back({64});
  dist::decompress_fp16(wire, back);
  for (i64 i = 0; i < 64; ++i) {
    EXPECT_NEAR(back[i], t[i], std::abs(t[i]) / 1000.0f + 1e-6f);
  }
}

TEST(Fp16Allreduce, CloseToExactMean) {
  Rng rng(3);
  std::vector<Tensor> shards;
  std::vector<double> exact(32, 0.0);
  for (int r = 0; r < 8; ++r) {
    shards.push_back(Tensor::randn({32}, rng));
    for (i64 j = 0; j < 32; ++j) exact[static_cast<std::size_t>(j)] += shards.back()[j];
  }
  std::vector<Tensor*> ptrs;
  for (auto& t : shards) ptrs.push_back(&t);
  dist::tree_allreduce_mean_fp16(ptrs);
  for (i64 j = 0; j < 32; ++j) {
    const double want = exact[static_cast<std::size_t>(j)] / 8.0;
    EXPECT_NEAR(shards[0][j], want, std::abs(want) * 0.01 + 1e-3);
    // All shards identical after broadcast.
    for (int r = 1; r < 8; ++r) {
      EXPECT_EQ(shards[static_cast<std::size_t>(r)][j], shards[0][j]);
    }
  }
}

TEST(LrFinder, DetectsBlowupOnQuadratic) {
  // Gradient descent on f(w) = 0.5 w^2 diverges for lr > 2: the range test
  // must stop and suggest a stable LR below that.
  double w = 5.0;
  auto step = [&](float lr) {
    const double loss = 0.5 * w * w;
    w -= lr * w;
    return loss;
  };
  analysis::LrFinderConfig cfg;
  cfg.min_lr = 0.01f;
  cfg.max_lr = 100.0f;
  cfg.n_steps = 60;
  auto result = analysis::lr_range_test(cfg, step);
  EXPECT_TRUE(result.blew_up);
  EXPECT_GT(result.suggested_lr, 0.0f);
  EXPECT_LT(result.suggested_lr, 2.0f);
}

TEST(LrFinder, SuggestsHalfTheBestLr) {
  // Loss minimised at a known interior step: the suggestion must be half
  // that step's LR.
  int step_idx = 0;
  auto step = [&](float) {
    // V-shape: minimum at step 10 of 20.
    const double s = static_cast<double>(step_idx++);
    return 1.0 + std::abs(s - 10.0);
  };
  analysis::LrFinderConfig cfg;
  cfg.min_lr = 0.001f;
  cfg.max_lr = 0.1f;
  cfg.n_steps = 20;
  cfg.smoothing = 0.0;  // no EMA: exact minimum location
  cfg.blowup_factor = 100.0;
  auto result = analysis::lr_range_test(cfg, step);
  EXPECT_FALSE(result.blew_up);
  ASSERT_EQ(result.trace.size(), 20u);
  EXPECT_FLOAT_EQ(result.suggested_lr, result.trace[10].lr / 2.0f);
}

TEST(LrFinder, NanLossStopsImmediately) {
  auto step = [](float) { return std::nan(""); };
  analysis::LrFinderConfig cfg;
  auto result = analysis::lr_range_test(cfg, step);
  EXPECT_TRUE(result.blew_up);
  EXPECT_TRUE(result.trace.empty());
  EXPECT_EQ(result.suggested_lr, cfg.min_lr);
}

}  // namespace
}  // namespace legw
