// Finite-difference gradient checks for every primitive autograd op.
#include <gtest/gtest.h>

#include <cmath>

#include "ag/gradcheck.hpp"
#include "ag/ops.hpp"

namespace legw::ag {
namespace {

using core::Rng;
using core::Shape;

Variable leaf(Shape shape, Rng& rng) {
  return Variable::leaf(Tensor::randn(std::move(shape), rng, 0.5f), true);
}

#define EXPECT_GRADCHECK_OK(result) \
  EXPECT_TRUE((result).ok) << (result).detail

TEST(AgValue, LeafAndConstant) {
  Variable v = Variable::leaf(Tensor({2}, {1.0f, 2.0f}), true);
  EXPECT_TRUE(v.requires_grad());
  EXPECT_EQ(v.numel(), 2);
  Variable c = Variable::constant(Tensor({2}, {3.0f, 4.0f}));
  EXPECT_FALSE(c.requires_grad());
  // Ops on constants require no grad and backward through them is a no-op.
  Variable s = sum_all(add(c, c));
  EXPECT_FALSE(s.requires_grad());
}

TEST(AgBackward, AccumulatesAcrossCalls) {
  Variable x = Variable::leaf(Tensor({1}, {2.0f}), true);
  Variable y = mul(x, x);  // y = x^2, dy/dx = 4
  backward(y);
  EXPECT_FLOAT_EQ(x.grad()[0], 4.0f);
  // Fresh graph, same leaf: gradient accumulates (leaf semantics).
  Variable y2 = mul(x, x);
  backward(y2);
  EXPECT_FLOAT_EQ(x.grad()[0], 8.0f);
  x.zero_grad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(AgBackward, DiamondGraphCountsBothPaths) {
  // z = x*x + x*x: gradient must be 4x, requiring correct handling of a node
  // used twice.
  Variable x = Variable::leaf(Tensor({1}, {3.0f}), true);
  Variable sq = mul(x, x);
  Variable z = add(sq, sq);
  backward(z);
  EXPECT_FLOAT_EQ(x.grad()[0], 12.0f);
}

TEST(AgBackward, DeepChainNoStackOverflow) {
  // 20k sequential nodes: the iterative topo sort must handle this.
  Variable x = Variable::leaf(Tensor({1}, {1.0f}), true);
  Variable y = x;
  for (int i = 0; i < 20000; ++i) y = add_scalar(y, 0.0f);
  backward(y);
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0f);
}

// ---- elementwise ops --------------------------------------------------------

TEST(AgGrad, Add) {
  Rng rng(1);
  Variable a = leaf({3, 4}, rng), b = leaf({3, 4}, rng);
  auto r = grad_check([&] { return sum_all(mul(add(a, b), add(a, b))); },
                      {a, b});
  EXPECT_GRADCHECK_OK(r);
}

TEST(AgGrad, Sub) {
  Rng rng(2);
  Variable a = leaf({2, 5}, rng), b = leaf({2, 5}, rng);
  auto r = grad_check([&] { return sum_all(mul(sub(a, b), sub(a, b))); },
                      {a, b});
  EXPECT_GRADCHECK_OK(r);
}

TEST(AgGrad, MulAndScale) {
  Rng rng(3);
  Variable a = leaf({4}, rng), b = leaf({4}, rng);
  auto r = grad_check([&] { return sum_all(scale(mul(a, b), 1.7f)); }, {a, b});
  EXPECT_GRADCHECK_OK(r);
}

TEST(AgGrad, AddBias) {
  Rng rng(4);
  Variable x = leaf({3, 5}, rng), b = leaf({5}, rng);
  auto r = grad_check(
      [&] { return sum_all(mul(add_bias(x, b), add_bias(x, b))); }, {x, b});
  EXPECT_GRADCHECK_OK(r);
}

TEST(AgGrad, MulColvec) {
  Rng rng(5);
  Variable x = leaf({4, 3}, rng), c = leaf({4, 1}, rng);
  auto r = grad_check(
      [&] { return sum_all(mul(mul_colvec(x, c), mul_colvec(x, c))); },
      {x, c});
  EXPECT_GRADCHECK_OK(r);
}

// ---- matmul: all four transpose configurations ------------------------------

class MatmulGradTest : public ::testing::TestWithParam<std::pair<bool, bool>> {};

TEST_P(MatmulGradTest, GradMatchesFiniteDiff) {
  const auto [ta, tb] = GetParam();
  Rng rng(6);
  const i64 m = 3, k = 4, n = 2;
  Variable a = leaf(ta ? Shape{k, m} : Shape{m, k}, rng);
  Variable b = leaf(tb ? Shape{n, k} : Shape{k, n}, rng);
  auto r = grad_check(
      [&] {
        Variable c = matmul(a, b, ta, tb);
        return sum_all(mul(c, c));
      },
      {a, b});
  EXPECT_GRADCHECK_OK(r);
}

INSTANTIATE_TEST_SUITE_P(AllTransposes, MatmulGradTest,
                         ::testing::Values(std::pair{false, false},
                                           std::pair{false, true},
                                           std::pair{true, false},
                                           std::pair{true, true}));

// ---- nonlinearities ----------------------------------------------------------

TEST(AgGrad, Sigmoid) {
  Rng rng(7);
  Variable a = leaf({3, 3}, rng);
  auto r = grad_check([&] { return sum_all(sigmoid(a)); }, {a});
  EXPECT_GRADCHECK_OK(r);
}

TEST(AgGrad, Tanh) {
  Rng rng(8);
  Variable a = leaf({6}, rng);
  auto r = grad_check([&] { return sum_all(mul(tanh(a), tanh(a))); }, {a});
  EXPECT_GRADCHECK_OK(r);
}

TEST(AgGrad, Relu) {
  Rng rng(9);
  // Keep values away from the kink where the derivative is undefined.
  Tensor init = Tensor::randn({10}, rng);
  for (i64 i = 0; i < init.numel(); ++i) {
    if (std::abs(init[i]) < 0.1f) init[i] = 0.5f;
  }
  Variable a = Variable::leaf(init, true);
  auto r = grad_check([&] { return sum_all(mul(relu(a), relu(a))); }, {a});
  EXPECT_GRADCHECK_OK(r);
}

TEST(AgGrad, SoftmaxRows) {
  Rng rng(10);
  Variable a = leaf({3, 4}, rng);
  Rng wrng(99);
  Variable w = Variable::constant(Tensor::randn({3, 4}, wrng));
  auto r = grad_check([&] { return sum_all(mul(softmax_rows(a), w)); }, {a});
  EXPECT_GRADCHECK_OK(r);
}

TEST(AgForward, SoftmaxRowsSumToOne) {
  Rng rng(11);
  Variable a = leaf({5, 7}, rng);
  Variable s = softmax_rows(a);
  for (i64 row = 0; row < 5; ++row) {
    double sum = 0.0;
    for (i64 c = 0; c < 7; ++c) sum += s.value().at(row, c);
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

// ---- shape ops ----------------------------------------------------------------

TEST(AgGrad, Reshape) {
  Rng rng(12);
  Variable a = leaf({2, 6}, rng);
  auto r = grad_check(
      [&] {
        Variable b = reshape(a, {3, 4});
        return sum_all(mul(b, b));
      },
      {a});
  EXPECT_GRADCHECK_OK(r);
}

TEST(AgGrad, ConcatAndSliceCols) {
  Rng rng(13);
  Variable a = leaf({3, 2}, rng), b = leaf({3, 4}, rng);
  auto r = grad_check(
      [&] {
        Variable c = concat_cols({a, b});
        Variable left = slice_cols(c, 0, 3);
        Variable right = slice_cols(c, 3, 6);
        return add(sum_all(mul(left, left)), sum_all(mul(right, right)));
      },
      {a, b});
  EXPECT_GRADCHECK_OK(r);
}

TEST(AgGrad, ConcatRows) {
  Rng rng(14);
  Variable a = leaf({2, 3}, rng), b = leaf({4, 3}, rng);
  auto r = grad_check(
      [&] {
        Variable c = concat_rows({a, b});
        return sum_all(mul(c, c));
      },
      {a, b});
  EXPECT_GRADCHECK_OK(r);
}

TEST(AgForward, ConcatColsLayout) {
  Variable a = Variable::constant(Tensor({2, 1}, {1, 3}));
  Variable b = Variable::constant(Tensor({2, 2}, {4, 5, 6, 7}));
  Variable c = concat_cols({a, b});
  EXPECT_EQ(c.value().at(0, 0), 1.0f);
  EXPECT_EQ(c.value().at(0, 2), 5.0f);
  EXPECT_EQ(c.value().at(1, 0), 3.0f);
  EXPECT_EQ(c.value().at(1, 1), 6.0f);
}

// ---- reductions ----------------------------------------------------------------

TEST(AgGrad, MeanAllAndSumRows) {
  Rng rng(15);
  Variable a = leaf({4, 3}, rng);
  auto r1 = grad_check([&] { return mean_all(mul(a, a)); }, {a});
  EXPECT_GRADCHECK_OK(r1);
  auto r2 = grad_check(
      [&] {
        Variable s = sum_rows(a);  // [3]
        return sum_all(mul(s, s));
      },
      {a});
  EXPECT_GRADCHECK_OK(r2);
}

// ---- embedding -------------------------------------------------------------------

TEST(AgGrad, EmbeddingScatterAdd) {
  Rng rng(16);
  Variable w = leaf({6, 3}, rng);
  const std::vector<i32> idx = {0, 2, 2, 5};  // repeated index!
  auto r = grad_check(
      [&] {
        Variable e = embedding(w, idx);
        return sum_all(mul(e, e));
      },
      {w});
  EXPECT_GRADCHECK_OK(r);
}

TEST(AgForward, EmbeddingGathersRows) {
  Variable w = Variable::constant(Tensor({3, 2}, {1, 2, 3, 4, 5, 6}));
  Variable e = embedding(w, {2, 0});
  EXPECT_EQ(e.value().at(0, 0), 5.0f);
  EXPECT_EQ(e.value().at(1, 1), 2.0f);
}

// ---- normalize_vec ----------------------------------------------------------------

TEST(AgGrad, NormalizeVec) {
  Rng rng(17);
  Variable v = leaf({5}, rng);
  Rng wrng(3);
  Variable w = Variable::constant(Tensor::randn({5}, wrng));
  auto r = grad_check([&] { return sum_all(mul(normalize_vec(v), w)); }, {v});
  EXPECT_GRADCHECK_OK(r);
}

TEST(AgForward, NormalizeVecIsUnit) {
  Rng rng(18);
  Variable v = leaf({7}, rng);
  EXPECT_NEAR(normalize_vec(v).value().l2_norm(), 1.0f, 1e-5f);
}

// ---- dropout --------------------------------------------------------------------

TEST(AgForward, DropoutEvalIsIdentity) {
  Rng rng(19);
  Variable a = leaf({4, 4}, rng);
  Rng drng(1);
  Variable d = dropout(a, 0.5f, drng, /*training=*/false);
  for (i64 i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(d.value()[i], a.value()[i]);
  }
}

TEST(AgForward, DropoutTrainPreservesExpectation) {
  Rng rng(20);
  Variable a = Variable::leaf(Tensor::full({20000}, 1.0f), true);
  Rng drng(2);
  Variable d = dropout(a, 0.3f, drng, true);
  // Inverted dropout: E[output] == input.
  EXPECT_NEAR(d.value().mean(), 1.0f, 0.03f);
  // Surviving entries are scaled by 1/keep.
  int zeros = 0;
  for (i64 i = 0; i < d.numel(); ++i) {
    if (d.value()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(d.value()[i], 1.0f / 0.7f, 1e-5f);
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / d.numel(), 0.3, 0.02);
}

TEST(AgGrad, DropoutMaskAppliedToGradient) {
  Variable a = Variable::leaf(Tensor::full({1000}, 2.0f), true);
  Rng drng(3);
  Variable d = dropout(a, 0.5f, drng, true);
  backward(sum_all(d));
  for (i64 i = 0; i < a.numel(); ++i) {
    if (d.value()[i] == 0.0f) {
      EXPECT_EQ(a.grad()[i], 0.0f);
    } else {
      EXPECT_NEAR(a.grad()[i], 2.0f, 1e-5f);
    }
  }
}

// ---- cross-entropy -----------------------------------------------------------------

TEST(AgGrad, SoftmaxCrossEntropy) {
  Rng rng(21);
  Variable logits = leaf({4, 5}, rng);
  const std::vector<i32> targets = {0, 3, 2, 4};
  auto r = grad_check([&] { return softmax_cross_entropy(logits, targets); },
                      {logits});
  EXPECT_GRADCHECK_OK(r);
}

TEST(AgGrad, SoftmaxCrossEntropyIgnoreIndex) {
  Rng rng(22);
  Variable logits = leaf({4, 3}, rng);
  const std::vector<i32> targets = {1, -1, 0, -1};  // two ignored rows
  i64 counted = 0;
  Variable loss = softmax_cross_entropy(logits, targets, -1, &counted);
  EXPECT_EQ(counted, 2);
  auto r = grad_check(
      [&] { return softmax_cross_entropy(logits, targets, -1); }, {logits});
  EXPECT_GRADCHECK_OK(r);
  // Ignored rows get exactly zero gradient.
  logits.zero_grad();
  backward(softmax_cross_entropy(logits, targets, -1));
  for (i64 c = 0; c < 3; ++c) {
    EXPECT_EQ(logits.grad().at(1, c), 0.0f);
    EXPECT_EQ(logits.grad().at(3, c), 0.0f);
  }
}

TEST(AgForward, CrossEntropyMatchesManual) {
  // 2 rows, 2 classes, hand-computed.
  Variable logits =
      Variable::leaf(Tensor({2, 2}, {1.0f, 0.0f, 0.0f, 2.0f}), true);
  const std::vector<i32> targets = {0, 0};
  Variable loss = softmax_cross_entropy(logits, targets);
  const double l0 = std::log(1.0 + std::exp(-1.0));       // -log p(class0|row0)
  const double l1 = std::log(1.0 + std::exp(2.0));        // row1 target 0
  EXPECT_NEAR(loss.value()[0], (l0 + l1) / 2.0, 1e-5);
}

}  // namespace
}  // namespace legw::ag
