// Golden determinism: two identically-seeded training runs must be bitwise
// identical — final parameters, recorded metric CSV, and traced span
// structure — under both GEMM kernels. This is the repro guarantee every
// figure bench leans on (the paper's sweeps only make sense if a (seed,
// config) pair names one unique trajectory).
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>

#include "core/flags.hpp"
#include "obs/trace.hpp"
#include "sched/schedule.hpp"
#include "train/recorder.hpp"
#include "train/runners.hpp"

namespace legw {
namespace {

struct GoldenRun {
  std::vector<core::Tensor> params;
  std::string csv;
  std::map<std::string, i64> span_counts;
  double final_metric = 0.0;
  double final_train_loss = 0.0;
};

// One seeded train_mnist run with tracing on, capturing everything the
// determinism contract covers. The recorder is cleared first so each run's
// span structure stands alone.
GoldenRun run_once(u64 seed) {
  obs::TraceRecorder::global().clear();
  data::SyntheticMnist dataset(256, 64, 42);
  models::MnistLstmConfig mcfg;
  mcfg.transform_dim = 16;
  mcfg.hidden_dim = 16;

  sched::ConstantLr schedule(0.05f);
  train::Recorder recorder;
  train::RunConfig run;
  run.batch_size = 32;
  run.epochs = 2;
  run.optimizer = "momentum";
  run.schedule = &schedule;
  run.seed = seed;
  run.recorder = &recorder;
  run.capture_final_params = true;

  train::RunResult result = train::train_mnist(dataset, mcfg, run);
  GoldenRun golden;
  golden.params = std::move(result.final_params);
  golden.csv = recorder.to_csv();
  golden.span_counts = obs::TraceRecorder::global().span_counts();
  golden.final_metric = result.final_metric;
  golden.final_train_loss = result.final_train_loss;
  return golden;
}

bool bitwise_equal(const core::Tensor& a, const core::Tensor& b) {
  if (!a.same_shape(b)) return false;
  return std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

class GoldenDeterminism : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    saved_kernel_ = core::gemm_kernel();
    ASSERT_TRUE(core::set_gemm_kernel(GetParam()));
    obs::set_tracing_enabled(true);
  }
  void TearDown() override {
    obs::TraceRecorder::global().clear();
    obs::set_tracing_enabled(false);
    core::set_gemm_kernel(saved_kernel_);
  }

 private:
  core::GemmKernel saved_kernel_;
};

TEST_P(GoldenDeterminism, RepeatedSeededRunsAreBitwiseIdentical) {
  const GoldenRun a = run_once(3);
  const GoldenRun b = run_once(3);

  // Parameters: bitwise, not approximately.
  ASSERT_FALSE(a.params.empty());
  ASSERT_EQ(a.params.size(), b.params.size());
  for (std::size_t i = 0; i < a.params.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(a.params[i], b.params[i])) << "param " << i;
  }

  // Recorded training curves render to identical CSV.
  EXPECT_FALSE(a.csv.empty());
  EXPECT_EQ(a.csv, b.csv);

  // Traced span structure (name -> count) matches exactly, and the expected
  // training phases all appear.
  EXPECT_EQ(a.span_counts, b.span_counts);
  for (const char* phase : {"step", "data", "forward", "backward", "clip",
                            "optimizer", "eval"}) {
    EXPECT_GT(a.span_counts.count(phase), 0u) << phase;
  }
  EXPECT_DOUBLE_EQ(a.final_metric, b.final_metric);
  EXPECT_DOUBLE_EQ(a.final_train_loss, b.final_train_loss);
}

TEST_P(GoldenDeterminism, DifferentSeedsDiverge) {
  const GoldenRun a = run_once(3);
  const GoldenRun b = run_once(4);
  ASSERT_EQ(a.params.size(), b.params.size());
  bool any_diff = false;
  for (std::size_t i = 0; i < a.params.size() && !any_diff; ++i) {
    any_diff = !bitwise_equal(a.params[i], b.params[i]);
  }
  EXPECT_TRUE(any_diff);
  EXPECT_NE(a.csv, b.csv);
}

INSTANTIATE_TEST_SUITE_P(Kernels, GoldenDeterminism,
                         ::testing::Values("ref", "blocked"));

}  // namespace
}  // namespace legw
