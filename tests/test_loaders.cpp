// Real-dataset loaders, exercised against synthetic files written in the
// genuine wire formats (IDX big-endian, whitespace text).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/loaders.hpp"

namespace legw::data {
namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const char* name)
      : path(std::string("/tmp/legw_loader_") + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

void write_be32(std::FILE* f, u32 v) {
  const unsigned char bytes[4] = {
      static_cast<unsigned char>(v >> 24), static_cast<unsigned char>(v >> 16),
      static_cast<unsigned char>(v >> 8), static_cast<unsigned char>(v)};
  std::fwrite(bytes, 1, 4, f);
}

TEST(IdxLoader, ImagesRoundTrip) {
  TempFile tmp("img.idx3");
  {
    std::FILE* f = std::fopen(tmp.path.c_str(), "wb");
    write_be32(f, 0x00000803u);
    write_be32(f, 2);  // count
    write_be32(f, 2);  // rows
    write_be32(f, 3);  // cols
    // 2 images x 6 pixels.
    const unsigned char px[12] = {0, 51, 102, 153, 204, 255,
                                  255, 204, 153, 102, 51, 0};
    std::fwrite(px, 1, 12, f);
    std::fclose(f);
  }
  IdxImages images = load_idx_images(tmp.path);
  EXPECT_EQ(images.count, 2);
  EXPECT_EQ(images.rows, 2);
  EXPECT_EQ(images.cols, 3);
  EXPECT_EQ(images.pixels.shape(), (core::Shape{2, 6}));
  EXPECT_FLOAT_EQ(images.pixels[0], 0.0f);
  EXPECT_FLOAT_EQ(images.pixels[5], 1.0f);
  EXPECT_NEAR(images.pixels[1], 0.2f, 1e-6f);
  EXPECT_FLOAT_EQ(images.pixels[6], 1.0f);
}

TEST(IdxLoader, LabelsRoundTrip) {
  TempFile tmp("lab.idx1");
  {
    std::FILE* f = std::fopen(tmp.path.c_str(), "wb");
    write_be32(f, 0x00000801u);
    write_be32(f, 4);
    const unsigned char labels[4] = {7, 0, 9, 3};
    std::fwrite(labels, 1, 4, f);
    std::fclose(f);
  }
  auto labels = load_idx_labels(tmp.path);
  ASSERT_EQ(labels.size(), 4u);
  EXPECT_EQ(labels[0], 7);
  EXPECT_EQ(labels[2], 9);
}

TEST(IdxLoader, RejectsWrongMagicAndTruncation) {
  TempFile tmp("bad.idx");
  {
    std::FILE* f = std::fopen(tmp.path.c_str(), "wb");
    write_be32(f, 0x00000801u);  // label magic fed to the image loader
    write_be32(f, 1);
    std::fclose(f);
  }
  EXPECT_DEATH((void)load_idx_images(tmp.path), "bad image magic");

  TempFile tmp2("trunc.idx3");
  {
    std::FILE* f = std::fopen(tmp2.path.c_str(), "wb");
    write_be32(f, 0x00000803u);
    write_be32(f, 10);  // claims 10 images
    write_be32(f, 28);
    write_be32(f, 28);
    std::fclose(f);  // ...but no pixel data
  }
  EXPECT_DEATH((void)load_idx_images(tmp2.path), "truncated");
}

TEST(TextVocab, FrequencyRankedWithUnk) {
  TempFile tmp("corpus.txt");
  {
    std::ofstream out(tmp.path);
    out << "the cat sat on the mat the cat\n";
  }
  TextVocab vocab(tmp.path, /*max_vocab=*/4);
  EXPECT_EQ(vocab.size(), 4);
  // "the" (3) -> 0, "cat" (2) -> 1, then alphabetical among count-1 words:
  // "mat" -> 2; everything else is <unk> (id 3).
  EXPECT_EQ(vocab.word_id("the"), 0);
  EXPECT_EQ(vocab.word_id("cat"), 1);
  EXPECT_EQ(vocab.word_id("mat"), 2);
  EXPECT_EQ(vocab.word_id("on"), vocab.unk_id());
  EXPECT_EQ(vocab.word_id("unseen"), vocab.unk_id());
  EXPECT_EQ(vocab.word(0), "the");
  EXPECT_EQ(vocab.word(vocab.unk_id()), "<unk>");
}

TEST(TextVocab, EncodeFileMatchesWordIds) {
  TempFile train("train.txt");
  TempFile valid("valid.txt");
  {
    std::ofstream out(train.path);
    out << "a b a c a b\n";
  }
  {
    std::ofstream out(valid.path);
    out << "b a z\n";
  }
  TextVocab vocab(train.path, 10);
  auto tokens = vocab.encode_file(valid.path);
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], vocab.word_id("b"));
  EXPECT_EQ(tokens[1], vocab.word_id("a"));
  EXPECT_EQ(tokens[2], vocab.unk_id());
}

TEST(TextVocab, DeterministicAcrossRuns) {
  TempFile tmp("det.txt");
  {
    std::ofstream out(tmp.path);
    out << "x y z x y x w v u t\n";
  }
  TextVocab a(tmp.path, 5), b(tmp.path, 5);
  for (i32 id = 0; id < a.size(); ++id) {
    EXPECT_EQ(a.word(id), b.word(id));
  }
}

}  // namespace
}  // namespace legw::data
