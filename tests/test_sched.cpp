// Schedules and the LEGW scaling policy — including the paper's Table 2/3
// recipes as exact regression values.
#include <gtest/gtest.h>

#include <cmath>

#include "sched/legw.hpp"
#include "sched/schedule.hpp"

namespace legw::sched {
namespace {

TEST(ScalingRules, LinearAndSqrt) {
  EXPECT_FLOAT_EQ(linear_scaling(0.1f, 256, 1024), 0.4f);
  EXPECT_FLOAT_EQ(sqrt_scaling(0.1f, 256, 1024), 0.2f);
  // Downscaling works symmetrically.
  EXPECT_FLOAT_EQ(linear_scaling(0.4f, 1024, 256), 0.1f);
  EXPECT_NEAR(sqrt_scaling(0.2f, 1024, 256), 0.1f, 1e-6f);
}

TEST(ConstantLr, IsConstant) {
  ConstantLr s(0.3f);
  EXPECT_FLOAT_EQ(s.lr(0.0), 0.3f);
  EXPECT_FLOAT_EQ(s.lr(123.4), 0.3f);
}

TEST(MultiStepLr, PaperImagenetShape) {
  // Paper Fig. 2.1: decay x0.1 at epochs 30, 60, 80 from peak 2^2.5.
  const float peak = std::pow(2.0f, 2.5f);
  MultiStepLr s(peak, {30.0, 60.0, 80.0}, 0.1f);
  EXPECT_FLOAT_EQ(s.lr(0.0), peak);
  EXPECT_FLOAT_EQ(s.lr(29.9), peak);
  EXPECT_FLOAT_EQ(s.lr(30.0), 0.1f * peak);
  EXPECT_FLOAT_EQ(s.lr(59.9), 0.1f * peak);
  EXPECT_NEAR(s.lr(60.0), 0.01f * peak, 1e-6f);
  EXPECT_NEAR(s.lr(85.0), 0.001f * peak, 1e-6f);
}

TEST(ExponentialEpochDecay, PtbSmallShape) {
  // Paper: constant LR for the first 7 epochs, then x0.4 per epoch.
  ExponentialEpochDecay s(1.0f, 7.0, 0.4f);
  EXPECT_FLOAT_EQ(s.lr(0.0), 1.0f);
  EXPECT_FLOAT_EQ(s.lr(6.9), 1.0f);
  EXPECT_NEAR(s.lr(7.0), 0.4f, 1e-6f);
  EXPECT_NEAR(s.lr(8.5), 0.16f, 1e-6f);
}

TEST(PolynomialLr, PowerTwoShape) {
  PolynomialLr s(2.0f, 10.0, 2.0f);
  EXPECT_FLOAT_EQ(s.lr(0.0), 2.0f);
  EXPECT_NEAR(s.lr(5.0), 2.0f * 0.25f, 1e-6f);
  EXPECT_FLOAT_EQ(s.lr(10.0), 0.0f);
  EXPECT_FLOAT_EQ(s.lr(15.0), 0.0f);  // clamped past the end
}

TEST(GradualWarmup, LinearRampThenInner) {
  auto inner = std::make_shared<ConstantLr>(1.0f);
  GradualWarmup s(2.0, inner);
  EXPECT_FLOAT_EQ(s.lr(0.0), 0.0f);
  EXPECT_FLOAT_EQ(s.lr(1.0), 0.5f);
  EXPECT_FLOAT_EQ(s.lr(2.0), 1.0f);
  EXPECT_FLOAT_EQ(s.lr(50.0), 1.0f);
}

TEST(GradualWarmup, ComposesWithDecayTarget) {
  // The ramp tracks the inner schedule, so warmup into a poly decay never
  // overshoots the decayed value.
  auto inner = std::make_shared<PolynomialLr>(1.0f, 10.0, 2.0f);
  GradualWarmup s(2.0, inner);
  EXPECT_LE(s.lr(1.0), inner->lr(1.0));
  EXPECT_FLOAT_EQ(s.lr(2.0), inner->lr(2.0));
}

TEST(GradualWarmup, ZeroWarmupIsIdentity) {
  auto inner = std::make_shared<ConstantLr>(0.7f);
  GradualWarmup s(0.0, inner);
  EXPECT_FLOAT_EQ(s.lr(0.0), 0.7f);
}

// ---- LEGW policy -------------------------------------------------------------

class LegwScaleTest : public ::testing::TestWithParam<int> {};

TEST_P(LegwScaleTest, SqrtLrAndLinearWarmup) {
  const int log2k = GetParam();
  const i64 k = i64{1} << log2k;
  LegwBaseline base{128, 0.1f, 0.3125};
  LegwRecipe r = legw_scale(base, 128 * k);
  EXPECT_NEAR(r.peak_lr, 0.1f * std::sqrt(static_cast<float>(k)), 1e-6f);
  EXPECT_NEAR(r.warmup_epochs, 0.3125 * static_cast<double>(k), 1e-9);
  EXPECT_NEAR(r.scale_factor, static_cast<double>(k), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, LegwScaleTest,
                         ::testing::Range(0, 9));  // k = 1 .. 256

TEST(Legw, DownscalingInvertsExactly) {
  // Tune at 32K, derive 1K (the paper's §3.3 reverse direction).
  LegwBaseline big{32768, 1.0f, 10.0};
  LegwRecipe small = legw_scale(big, 1024);
  EXPECT_NEAR(small.peak_lr, 1.0f / std::sqrt(32.0f), 1e-6f);
  EXPECT_NEAR(small.warmup_epochs, 10.0 / 32.0, 1e-9);
  // Round-tripping recovers the baseline.
  LegwBaseline derived{small.batch_size, small.peak_lr, small.warmup_epochs};
  LegwRecipe back = legw_scale(derived, 32768);
  EXPECT_NEAR(back.peak_lr, 1.0f, 1e-5f);
  EXPECT_NEAR(back.warmup_epochs, 10.0, 1e-6);
}

TEST(Legw, Table3ImagenetRecipes) {
  // Paper Table 3: base batch 1K with LR 2^2.5 and 10/2^5 warmup epochs.
  LegwBaseline base{1024, std::pow(2.0f, 2.5f), 10.0 / 32.0};
  const struct {
    i64 batch;
    float lr_exp;
    double warmup;
  } rows[] = {
      {1024, 2.5f, 10.0 / 32.0}, {2048, 3.0f, 10.0 / 16.0},
      {4096, 3.5f, 10.0 / 8.0},  {8192, 4.0f, 10.0 / 4.0},
      {16384, 4.5f, 10.0 / 2.0}, {32768, 5.0f, 10.0},
  };
  for (const auto& row : rows) {
    LegwRecipe r = legw_scale(base, row.batch);
    EXPECT_NEAR(r.peak_lr, std::pow(2.0f, row.lr_exp), 1e-3f)
        << "batch " << row.batch;
    EXPECT_NEAR(r.warmup_epochs, row.warmup, 1e-9) << "batch " << row.batch;
  }
}

TEST(Legw, Table2GnmtRecipes) {
  // Paper Table 2: base batch 256 with LR 2^-0.5/10^3, warmup 0.0145 epochs.
  LegwBaseline base{256, std::pow(2.0f, -0.5f) / 1000.0f, 0.0145};
  const struct {
    i64 batch;
    float lr_exp;
    double warmup;
  } rows[] = {
      {256, -0.5f, 0.0145}, {512, 0.0f, 0.0290},   {1024, 0.5f, 0.0580},
      {2048, 1.0f, 0.1160}, {4096, 1.5f, 0.2320},
  };
  for (const auto& row : rows) {
    LegwRecipe r = legw_scale(base, row.batch);
    EXPECT_NEAR(r.peak_lr, std::pow(2.0f, row.lr_exp) / 1000.0f, 1e-7f)
        << "batch " << row.batch;
    EXPECT_NEAR(r.warmup_epochs, row.warmup, 1e-4) << "batch " << row.batch;
  }
}

TEST(Legw, ScheduleBuilderWiresWarmupAndPeak) {
  LegwBaseline base{128, 0.2f, 0.5};
  auto sched = legw_schedule(base, 512, [](float peak) {
    return std::make_shared<MultiStepLr>(peak, std::vector<double>{10.0}, 0.1f);
  });
  // k = 4: peak = 0.4, warmup = 2 epochs.
  EXPECT_NEAR(sched->lr(1.0), 0.5 * 0.4f, 1e-6f);  // mid-warmup
  EXPECT_NEAR(sched->lr(2.0), 0.4f, 1e-6f);        // warmup done
  EXPECT_NEAR(sched->lr(10.0), 0.04f, 1e-6f);      // after decay milestone
}

TEST(Legw, ConstantConvenience) {
  LegwBaseline base{128, 0.1f, 1.0};
  auto sched = legw_constant(base, 512);
  // k = 4: peak 0.2, warmup 4 epochs.
  EXPECT_NEAR(sched->lr(4.0), 0.2f, 1e-6f);
  EXPECT_NEAR(sched->lr(2.0), 0.1f, 1e-6f);  // halfway through warmup
}

TEST(Legw, DescribeMentionsWarmup) {
  LegwBaseline base{128, 0.1f, 1.0};
  auto sched = legw_constant(base, 256);
  EXPECT_NE(sched->describe().find("warmup"), std::string::npos);
}

}  // namespace
}  // namespace legw::sched
