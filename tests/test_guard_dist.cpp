// Rank-consistent recovery under data parallelism: the anomaly x replicas x
// dist-engine matrix. Every replica must take the identical rollback
// decision (verdicts reduce by max severity), the recovery must keep the
// replicas bit-synchronised, and the recovered run must match the
// anomaly-free protect run bitwise — under both the sync and the overlapped
// gradient engine. Compiled into both the guard suite and the concurrency
// suite (the overlap engine spins up real threads, so tsan covers it).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include "core/flags.hpp"
#include "guard/sentinel.hpp"
#include "sched/schedule.hpp"
#include "train/runners.hpp"

namespace legw::train {
namespace {

struct TempDir {
  std::string path;
  // Pid-suffixed: ctest -j runs each test as its own process.
  explicit TempDir(const std::string& name)
      : path("/tmp/legw_guard_dist_" + name + "_" + std::to_string(getpid())) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

void expect_params_equal(const RunResult& a, const RunResult& b,
                         const std::string& tag) {
  ASSERT_FALSE(a.final_params.empty()) << tag;
  ASSERT_EQ(a.final_params.size(), b.final_params.size()) << tag;
  for (std::size_t p = 0; p < a.final_params.size(); ++p) {
    const core::Tensor& x = a.final_params[p];
    const core::Tensor& y = b.final_params[p];
    ASSERT_EQ(x.numel(), y.numel()) << tag << " param " << p;
    for (i64 i = 0; i < x.numel(); ++i) {
      ASSERT_EQ(x[i], y[i]) << tag << " param " << p << " elem " << i;
    }
  }
}

using MatrixParam = std::tuple<int, core::DistMode, guard::AnomalyPlan::Kind>;

class GuardDistMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(GuardDistMatrix, RecoveryIsRankConsistentAndBitwise) {
  const int n_replicas = std::get<0>(GetParam());
  const core::DistMode mode = std::get<1>(GetParam());
  const guard::AnomalyPlan::Kind kind = std::get<2>(GetParam());
  const core::DistMode saved = core::dist_mode();
  core::set_dist_mode(mode);

  const std::string tag = "r" + std::to_string(n_replicas) + "_" +
                          core::dist_mode_name(mode) + "_" +
                          std::to_string(static_cast<int>(kind));

  data::SyntheticMnist dataset(128, 16, 42);
  models::MnistLstmConfig mcfg;
  mcfg.transform_dim = 16;
  mcfg.hidden_dim = 16;
  sched::ConstantLr schedule(0.1f);

  guard::AnomalyPlan plan;
  plan.add(10, kind,
           kind == guard::AnomalyPlan::Kind::kGradExplosion ? 1e6f : 1e3f);

  RunConfig base;
  base.batch_size = 32;
  base.epochs = 4;  // 4 steps/epoch -> 16 steps
  base.optimizer = "momentum";
  base.schedule = &schedule;
  base.final_eval_only = true;
  base.capture_final_params = true;
  base.checkpoint_every_steps = 2;
  base.checkpoint_keep_last = 0;
  base.replicas = n_replicas;
  base.sentinel.enabled = true;
  base.sentinel.window = 8;
  base.sentinel.min_history = 4;
  base.sentinel.bless_after = 2;

  TempDir clean_dir(tag + "_clean");
  RunConfig clean = base;
  clean.checkpoint_dir = clean_dir.path;
  const RunResult ref = train_mnist(dataset, mcfg, clean);
  ASSERT_FALSE(ref.diverged) << tag;

  TempDir anom_dir(tag + "_anom");
  RunConfig anom = base;
  anom.checkpoint_dir = anom_dir.path;
  anom.anomaly_plan = &plan;
  const RunResult got = train_mnist(dataset, mcfg, anom);
  ASSERT_FALSE(got.diverged) << tag << ": recovery did not complete";
  EXPECT_EQ(got.guard_anomalies, 1) << tag;
  EXPECT_EQ(got.guard_rollbacks, 1) << tag;
  EXPECT_FALSE(got.guard_failed) << tag;
  // Replica 0's parameters (the replicas stay bit-synchronised through the
  // anomaly, the rollback, and the replay) match the anomaly-free run.
  expect_params_equal(ref, got, tag);

  core::set_dist_mode(saved);
}

INSTANTIATE_TEST_SUITE_P(
    AnomalyMatrix, GuardDistMatrix,
    ::testing::Combine(
        ::testing::Values(1, 2, 4),
        ::testing::Values(core::DistMode::kSync, core::DistMode::kOverlap),
        ::testing::Values(guard::AnomalyPlan::Kind::kNaN,
                          guard::AnomalyPlan::Kind::kLossSpike,
                          guard::AnomalyPlan::Kind::kGradExplosion)),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      const char* kind = "nan";
      switch (std::get<2>(info.param)) {
        case guard::AnomalyPlan::Kind::kNaN: kind = "nan"; break;
        case guard::AnomalyPlan::Kind::kLossSpike: kind = "spike"; break;
        case guard::AnomalyPlan::Kind::kGradExplosion: kind = "grad"; break;
      }
      return "r" + std::to_string(std::get<0>(info.param)) + "_" +
             std::string(core::dist_mode_name(std::get<1>(info.param))) +
             "_" + kind;
    });

}  // namespace
}  // namespace legw::train
