// Synthetic datasets and batchers: determinism, coverage, alignment.
#include <gtest/gtest.h>

#include <set>

#include "data/corpus.hpp"
#include "data/images.hpp"
#include "data/synthetic_mnist.hpp"
#include "data/translation.hpp"

namespace legw::data {
namespace {

TEST(SyntheticMnist, DeterministicForSeed) {
  SyntheticMnist a(100, 20, 42);
  SyntheticMnist b(100, 20, 42);
  for (i64 i = 0; i < a.train_images().numel(); ++i) {
    ASSERT_EQ(a.train_images()[i], b.train_images()[i]);
  }
  EXPECT_EQ(a.train_labels(), b.train_labels());
}

TEST(SyntheticMnist, PixelRangeAndLabelCoverage) {
  SyntheticMnist d(500, 100, 1);
  EXPECT_GE(d.train_images().min(), 0.0f);
  EXPECT_LE(d.train_images().max(), 1.0f);
  std::set<i32> classes(d.train_labels().begin(), d.train_labels().end());
  EXPECT_EQ(classes.size(), 10u);
}

TEST(SyntheticMnist, ClassesAreSeparable) {
  // Nearest-template classification must beat chance by a wide margin —
  // otherwise the LSTM task would be unlearnable noise.
  SyntheticMnist d(10, 200, 3);
  // Build per-class mean images from an independent big sample.
  SyntheticMnist ref(2000, 10, 4);
  std::vector<core::Tensor> means(10, core::Tensor::zeros({28 * 28}));
  std::vector<int> counts(10, 0);
  for (i64 i = 0; i < ref.n_train(); ++i) {
    const i32 c = ref.train_labels()[static_cast<std::size_t>(i)];
    for (i64 p = 0; p < 28 * 28; ++p) {
      means[static_cast<std::size_t>(c)][p] += ref.train_images()[i * 28 * 28 + p];
    }
    counts[static_cast<std::size_t>(c)]++;
  }
  for (int c = 0; c < 10; ++c) {
    means[static_cast<std::size_t>(c)].scale_(1.0f / counts[static_cast<std::size_t>(c)]);
  }
  int correct = 0;
  for (i64 i = 0; i < d.n_test(); ++i) {
    float best = 1e30f;
    int best_c = -1;
    for (int c = 0; c < 10; ++c) {
      float dist = 0.0f;
      for (i64 p = 0; p < 28 * 28; ++p) {
        const float diff =
            d.test_images()[i * 28 * 28 + p] - means[static_cast<std::size_t>(c)][p];
        dist += diff * diff;
      }
      if (dist < best) {
        best = dist;
        best_c = c;
      }
    }
    if (best_c == d.test_labels()[static_cast<std::size_t>(i)]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / d.n_test(), 0.9);
}

TEST(SyntheticMnist, GatherAlignsImagesAndLabels) {
  SyntheticMnist d(50, 10, 5);
  std::vector<i64> idx = {3, 0, 7};
  core::Tensor imgs = d.gather_images(idx, true);
  std::vector<i32> labels = d.gather_labels(idx, true);
  EXPECT_EQ(imgs.size(0), 3);
  EXPECT_EQ(labels[0], d.train_labels()[3]);
  EXPECT_EQ(imgs[0 * 784 + 100], d.train_images()[3 * 784 + 100]);
}

TEST(SyntheticCorpus, DeterministicAndInVocab) {
  CorpusConfig cfg;
  cfg.vocab = 50;
  cfg.n_train_tokens = 5000;
  cfg.n_valid_tokens = 500;
  SyntheticCorpus a(cfg), b(cfg);
  EXPECT_EQ(a.train_tokens(), b.train_tokens());
  for (i32 t : a.train_tokens()) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 50);
  }
  EXPECT_EQ(static_cast<i64>(a.train_tokens().size()), 5000);
}

TEST(SyntheticCorpus, HasSequentialStructure) {
  // Bigram entropy must be lower than unigram entropy: the HMM produces
  // predictable sequences, not i.i.d. noise.
  CorpusConfig cfg;
  cfg.vocab = 30;
  cfg.n_train_tokens = 60000;
  SyntheticCorpus c(cfg);
  const auto& toks = c.train_tokens();
  std::vector<double> uni(30, 0.0);
  std::vector<std::vector<double>> bi(30, std::vector<double>(30, 0.0));
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    uni[static_cast<std::size_t>(toks[i])] += 1.0;
    bi[static_cast<std::size_t>(toks[i])][static_cast<std::size_t>(toks[i + 1])] += 1.0;
  }
  double h_uni = 0.0;
  const double n = static_cast<double>(toks.size() - 1);
  for (double c0 : uni) {
    if (c0 > 0) h_uni -= (c0 / n) * std::log2(c0 / n);
  }
  double h_bi = 0.0;  // conditional entropy H(next | prev)
  for (int p = 0; p < 30; ++p) {
    double row_total = 0.0;
    for (double v : bi[static_cast<std::size_t>(p)]) row_total += v;
    if (row_total == 0.0) continue;
    for (double v : bi[static_cast<std::size_t>(p)]) {
      if (v > 0) h_bi -= (v / n) * std::log2(v / row_total);
    }
  }
  EXPECT_LT(h_bi, h_uni - 0.1);
}

TEST(BpttBatcher, TargetsAreShiftedInputs) {
  std::vector<i32> tokens;
  for (int i = 0; i < 101; ++i) tokens.push_back(i % 97);
  BpttBatcher batcher(tokens, /*batch=*/2, /*bptt=*/5);
  auto chunk = batcher.next_chunk();
  EXPECT_TRUE(chunk.first_in_epoch);
  // For each stream, target[t] == input[t+1] within the stream.
  for (i64 b = 0; b < 2; ++b) {
    for (i64 t = 0; t + 1 < 5; ++t) {
      EXPECT_EQ(chunk.targets[static_cast<std::size_t>(b * 5 + t)],
                chunk.inputs[static_cast<std::size_t>(b * 5 + t + 1)]);
    }
  }
}

TEST(BpttBatcher, ChunksAreContiguousAcrossCalls) {
  std::vector<i32> tokens;
  for (int i = 0; i < 203; ++i) tokens.push_back(i);
  BpttBatcher batcher(tokens, 2, 4);
  auto c1 = batcher.next_chunk();
  auto c2 = batcher.next_chunk();
  EXPECT_FALSE(c2.first_in_epoch);
  // Stream 0 of chunk 2 continues where chunk 1's targets left off.
  EXPECT_EQ(c2.inputs[0], c1.targets[3]);
}

TEST(BpttBatcher, WrapsAtEpochBoundary) {
  std::vector<i32> tokens(100, 1);
  BpttBatcher batcher(tokens, 4, 6);
  const i64 per_epoch = batcher.chunks_per_epoch();
  for (i64 i = 0; i < per_epoch; ++i) batcher.next_chunk();
  auto chunk = batcher.next_chunk();
  EXPECT_TRUE(chunk.first_in_epoch);
}

TEST(IndexBatcher, CoversEveryIndexOncePerEpoch) {
  IndexBatcher batcher(100, 10, 7);
  std::multiset<i64> seen;
  for (int i = 0; i < 10; ++i) {
    for (i64 idx : batcher.next()) seen.insert(idx);
  }
  EXPECT_EQ(seen.size(), 100u);
  for (i64 i = 0; i < 100; ++i) EXPECT_EQ(seen.count(i), 1u);
}

TEST(IndexBatcher, ReshufflesBetweenEpochs) {
  IndexBatcher batcher(64, 64, 9);
  auto e1 = batcher.next();
  auto e2 = batcher.next();
  EXPECT_NE(e1, e2);  // astronomically unlikely to match if shuffling works
}

TEST(SyntheticTranslation, TransformIsDeterministicBijection) {
  TranslationConfig cfg;
  SyntheticTranslation d(cfg);
  const std::vector<i32> src = {5, 6, 7, 8, 9};
  auto t1 = d.translate(src);
  auto t2 = d.translate(src);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1.size(), src.size());
  // Distinct sources map to distinct targets (bijectivity on tokens).
  auto t3 = d.translate({6, 5, 7, 8, 9});
  EXPECT_NE(t1, t3);
}

TEST(SyntheticTranslation, PairsAreConsistent) {
  TranslationConfig cfg;
  cfg.n_train = 50;
  cfg.n_test = 10;
  SyntheticTranslation d(cfg);
  for (const auto& p : d.train()) {
    EXPECT_EQ(d.translate(p.src), p.tgt);
    EXPECT_GE(static_cast<i64>(p.src.size()), cfg.min_len);
    EXPECT_LE(static_cast<i64>(p.src.size()), cfg.max_len);
  }
}

TEST(TranslationBatch, PaddingAndSpecialTokens) {
  TranslationConfig cfg;
  cfg.n_train = 20;
  cfg.min_len = 4;
  cfg.max_len = 8;
  SyntheticTranslation d(cfg);
  std::vector<i64> idx = {0, 1, 2, 3};
  auto batch = make_translation_batch(d.train(), idx);
  EXPECT_EQ(batch.batch, 4);
  for (i64 r = 0; r < 4; ++r) {
    const auto& p = d.train()[static_cast<std::size_t>(idx[static_cast<std::size_t>(r)])];
    // tgt_in starts with BOS.
    EXPECT_EQ(batch.tgt_in[static_cast<std::size_t>(r * batch.tgt_len)], kBosId);
    // tgt_out ends the sentence with EOS.
    EXPECT_EQ(batch.tgt_out[static_cast<std::size_t>(r * batch.tgt_len) + p.tgt.size()],
              kEosId);
    // Source is left-aligned and padded with kPadId.
    for (i64 t = static_cast<i64>(p.src.size()); t < batch.src_len; ++t) {
      EXPECT_EQ(batch.src[static_cast<std::size_t>(r * batch.src_len + t)], kPadId);
    }
    // Positions past EOS in tgt_out are padding (ignored by the loss).
    for (i64 t = static_cast<i64>(p.tgt.size()) + 1; t < batch.tgt_len; ++t) {
      EXPECT_EQ(batch.tgt_out[static_cast<std::size_t>(r * batch.tgt_len + t)], kPadId);
    }
  }
}

TEST(SyntheticImages, DeterministicShapesAndRange) {
  SyntheticImages a(50, 10, 3), b(50, 10, 3);
  std::vector<i64> idx = {0, 5};
  auto ia = a.gather_images(idx, true);
  auto ib = b.gather_images(idx, true);
  EXPECT_EQ(ia.shape(), (core::Shape{2, 3, 16, 16}));
  for (i64 i = 0; i < ia.numel(); ++i) ASSERT_EQ(ia[i], ib[i]);
  EXPECT_GE(ia.min(), 0.0f);
  EXPECT_LE(ia.max(), 1.0f);
}

TEST(SyntheticImages, AllClassesPresent) {
  SyntheticImages d(500, 50, 11);
  std::set<i32> classes(d.train_labels().begin(), d.train_labels().end());
  EXPECT_EQ(classes.size(), 10u);
}

}  // namespace
}  // namespace legw::data
