// Tracing/telemetry layer tests: span structure, enable-flag semantics,
// exporter formats and — importantly — the failure paths (unwritable output
// paths must report, not abort). Also covers the Recorder hardening from the
// same PR: nullptr lookups and write_csv error statuses.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/counters.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "train/recorder.hpp"

namespace legw {
namespace {

// Every test runs against the process-global recorder, so each starts from a
// cleared, enabled state and restores the disabled default on exit (other
// suites in this binary must keep paying only the disabled-flag branch).
class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_tracing_enabled(true);
    obs::TraceRecorder::global().clear();
  }
  void TearDown() override {
    obs::TraceRecorder::global().clear();
    obs::set_tracing_enabled(false);
  }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Minimal structural JSON check: every brace/bracket closes in order and
// quotes balance outside escapes. Catches truncated or mis-nested output
// without needing a JSON library.
bool json_balanced(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip escaped char
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return stack.empty() && !in_string;
}

TEST_F(ObsTraceTest, SpansRecordNamesDepthsAndNesting) {
  {
    obs::Span outer("step");
    {
      obs::Span inner("forward");
    }
    obs::Span inner2("backward");
  }
  const auto spans = obs::TraceRecorder::global().spans();
  ASSERT_EQ(spans.size(), 3u);
  // Spans complete innermost-first.
  EXPECT_EQ(spans[0].name, "forward");
  EXPECT_EQ(spans[0].depth, 1);
  EXPECT_EQ(spans[1].name, "backward");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].name, "step");
  EXPECT_EQ(spans[2].depth, 0);
  for (const auto& s : spans) {
    EXPECT_GE(s.begin_ns, 0);
    EXPECT_GE(s.dur_ns, 0);
    EXPECT_EQ(s.tid, 0);  // all on the main thread
  }
  // The outer span encloses both inner spans in time.
  EXPECT_LE(spans[2].begin_ns, spans[0].begin_ns);
  EXPECT_GE(spans[2].begin_ns + spans[2].dur_ns,
            spans[1].begin_ns + spans[1].dur_ns);
}

TEST_F(ObsTraceTest, DisabledTracingRecordsNothing) {
  obs::set_tracing_enabled(false);
  {
    obs::Span span("step");
    obs::count("steps", 1);
  }
  EXPECT_TRUE(obs::TraceRecorder::global().spans().empty());
  EXPECT_EQ(obs::TraceRecorder::global().span_counts().size(), 0u);
}

TEST_F(ObsTraceTest, SpanLatchedAtConstructionClosesAfterDisable) {
  // A span that straddles a disable still closes cleanly (flag is latched).
  {
    obs::Span span("straddler");
    obs::set_tracing_enabled(false);
  }
  obs::set_tracing_enabled(true);
  const auto counts = obs::TraceRecorder::global().span_counts();
  EXPECT_EQ(counts.at("straddler"), 1);
}

TEST_F(ObsTraceTest, SpanCountsAreThreadTimingIndependent) {
  auto work = [] {
    for (int i = 0; i < 5; ++i) obs::Span span("worker_phase");
  };
  // lint-allow: raw-thread — exercises tracing from threads the pool
  // has never seen.
  std::thread a(work), b(work);
  a.join();
  b.join();
  const auto counts = obs::TraceRecorder::global().span_counts();
  EXPECT_EQ(counts.at("worker_phase"), 10);
  // Distinct threads received distinct small tids.
  int max_tid = 0;
  for (const auto& s : obs::TraceRecorder::global().spans()) {
    max_tid = std::max(max_tid, s.tid);
  }
  EXPECT_GE(max_tid, 1);
}

TEST_F(ObsTraceTest, CountersMergeRecorderAndDispatchSnapshots) {
  obs::count("allreduce.bytes", 128);
  obs::count("allreduce.bytes", 64);
  core::bump_dispatch(core::DispatchCounter::kGemmBlocked);
  const auto counters = obs::TraceRecorder::global().counters();
  EXPECT_EQ(counters.at("allreduce.bytes"), 192);
  EXPECT_GE(counters.at("dispatch.gemm.blocked"), 1);
}

TEST_F(ObsTraceTest, PhaseSummaryAggregates) {
  for (int i = 0; i < 4; ++i) obs::Span span("phase_a");
  const auto summary = obs::TraceRecorder::global().phase_summary();
  ASSERT_EQ(summary.count("phase_a"), 1u);
  const auto& st = summary.at("phase_a");
  EXPECT_EQ(st.count, 4);
  EXPECT_GE(st.total_ms, 0.0);
  EXPECT_LE(st.p50_ms, st.p95_ms);
  EXPECT_NEAR(st.mean_ms * st.count, st.total_ms, 1e-9);
  const std::string table = obs::TraceRecorder::global().summary_table();
  EXPECT_NE(table.find("phase_a"), std::string::npos);
}

TEST_F(ObsTraceTest, ChromeTraceExportIsStructurallyValidJson) {
  {
    obs::Span outer("step");
    obs::Span inner("forward \"quoted\"\x01");
  }
  obs::count("steps", 1);
  const std::string path = ::testing::TempDir() + "legw_trace_test.json";
  std::string err;
  ASSERT_TRUE(obs::TraceRecorder::global().write_chrome_trace(path, &err))
      << err;
  const std::string body = read_file(path);
  EXPECT_TRUE(json_balanced(body)) << body;
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(body.find("\"step\""), std::string::npos);
  // Control chars and quotes in names must be escaped, never raw.
  EXPECT_EQ(body.find('\x01'), std::string::npos);
  EXPECT_NE(body.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(body.find("\"steps\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObsTraceTest, EmptyRecorderStillExportsValidTrace) {
  const std::string path = ::testing::TempDir() + "legw_trace_empty.json";
  ASSERT_TRUE(obs::TraceRecorder::global().write_chrome_trace(path));
  const std::string body = read_file(path);
  EXPECT_TRUE(json_balanced(body)) << body;
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObsTraceTest, ChromeTraceExportFailureReturnsError) {
  obs::Span span("x");
  std::string err;
  EXPECT_FALSE(obs::TraceRecorder::global().write_chrome_trace(
      "/nonexistent-dir/trace.json", &err));
  EXPECT_FALSE(err.empty());
  // And the nullptr-error overload must not crash.
  EXPECT_FALSE(obs::TraceRecorder::global().write_chrome_trace(
      "/nonexistent-dir/trace.json"));
}

TEST_F(ObsTraceTest, ClearDropsSpansCountersAndDispatchCounts) {
  {
    obs::Span span("x");
  }
  obs::count("c", 3);
  core::bump_dispatch(core::DispatchCounter::kGemmRef);
  obs::TraceRecorder::global().clear();
  EXPECT_TRUE(obs::TraceRecorder::global().spans().empty());
  EXPECT_TRUE(obs::TraceRecorder::global().span_counts().empty());
  EXPECT_EQ(core::dispatch_count(core::DispatchCounter::kGemmRef), 0);
}

TEST_F(ObsTraceTest, JsonEscape) {
  EXPECT_EQ(obs::json_escape("plain"), "\"plain\"");
  EXPECT_EQ(obs::json_escape("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(obs::json_escape("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(obs::json_escape(std::string(1, '\x02')), "\"\\u0002\"");
}

TEST_F(ObsTraceTest, RunTelemetryRendersSingleLineJson) {
  {
    obs::Span span("forward");
  }
  obs::count("steps", 2);
  obs::RunRecord rec;
  rec.run = "test.run";
  rec.config.emplace_back("batch_size", "64");
  rec.metrics.emplace_back("final_metric", 0.5);
  const std::string line =
      obs::render_run_telemetry(rec, obs::TraceRecorder::global());
  EXPECT_TRUE(json_balanced(line)) << line;
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\"run\""), std::string::npos);
  EXPECT_NE(line.find("\"test.run\""), std::string::npos);
  EXPECT_NE(line.find("\"batch_size\""), std::string::npos);
  EXPECT_NE(line.find("\"final_metric\""), std::string::npos);
  EXPECT_NE(line.find("\"forward\""), std::string::npos);
  EXPECT_NE(line.find("\"steps\""), std::string::npos);
}

TEST_F(ObsTraceTest, RunTelemetryAppendsJsonl) {
  const std::string path = ::testing::TempDir() + "legw_telemetry.jsonl";
  std::remove(path.c_str());
  obs::RunRecord rec;
  rec.run = "r1";
  ASSERT_TRUE(
      obs::append_run_telemetry(path, rec, obs::TraceRecorder::global()));
  rec.run = "r2";
  ASSERT_TRUE(
      obs::append_run_telemetry(path, rec, obs::TraceRecorder::global()));
  const std::string body = read_file(path);
  std::istringstream lines(body);
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(json_balanced(line)) << line;
    ++n;
  }
  EXPECT_EQ(n, 2);
  EXPECT_NE(body.find("\"r1\""), std::string::npos);
  EXPECT_NE(body.find("\"r2\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObsTraceTest, RunTelemetryAppendFailureReturnsError) {
  obs::RunRecord rec;
  rec.run = "r";
  std::string err;
  EXPECT_FALSE(obs::append_run_telemetry("/nonexistent-dir/t.jsonl", rec,
                                         obs::TraceRecorder::global(), &err));
  EXPECT_FALSE(err.empty());
}

// ---- Recorder hardening ------------------------------------------------------

TEST(RecorderFailurePaths, FindSeriesToleratesUnknownNames) {
  train::Recorder rec;
  EXPECT_EQ(rec.find_series("missing"), nullptr);
  rec.record("loss", 0, 1.5);
  const auto* series = rec.find_series("loss");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->size(), 1u);
  EXPECT_EQ((*series)[0].step, 0);
  EXPECT_DOUBLE_EQ((*series)[0].value, 1.5);
}

TEST(RecorderFailurePaths, EmptyRecorderExports) {
  train::Recorder rec;
  EXPECT_TRUE(rec.empty());
  const std::string csv = rec.to_csv();
  EXPECT_NE(csv.find("series,step,value"), std::string::npos);
  const std::string path = ::testing::TempDir() + "legw_rec_empty.csv";
  EXPECT_TRUE(rec.write_csv(path));
  std::remove(path.c_str());
}

TEST(RecorderFailurePaths, WriteCsvReportsIoErrorInsteadOfAborting) {
  train::Recorder rec;
  rec.record("loss", 0, 1.0);
  std::string err;
  EXPECT_FALSE(rec.write_csv("/nonexistent-dir/out.csv", &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(rec.write_csv("/nonexistent-dir/out.csv"));
}

}  // namespace
}  // namespace legw
