// ThreadPool concurrency stress + accounting tests. Lives in the kernel-test
// binary so it runs under every LEGW_KERNEL/LEGW_NUM_THREADS registration and
// under the ASan/UBSan preset (ctest -L kernels): the pool is the single
// parallelism primitive, so races here would poison every kernel above it.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "core/thread_pool.hpp"

namespace legw::core {
namespace {

i64 total_busy_ns(const ThreadPool::Stats& s) {
  return s.inline_busy_ns +
         std::accumulate(s.worker_busy_ns.begin(), s.worker_busy_ns.end(),
                         i64{0});
}

TEST(PoolStress, ConcurrentSubmittersEachCoverTheirRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kSubmitters = 6;
  constexpr i64 kN = 4096;
  constexpr int kRounds = 25;
  // One slot per (submitter, index); every parallel_for must write each of
  // its indices exactly once per round.
  std::vector<std::vector<std::atomic<int>>> hits(kSubmitters);
  for (auto& v : hits) {
    std::vector<std::atomic<int>> row(kN);
    for (auto& a : row) a.store(0, std::memory_order_relaxed);
    v = std::move(row);
  }
  // lint-allow: raw-thread — stress test needs real outside-the-pool
  // submitter threads.
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        pool.parallel_for(0, kN, 64, [&, t](i64 begin, i64 end) {
          for (i64 i = begin; i < end; ++i) {
            hits[t][static_cast<std::size_t>(i)].fetch_add(
                1, std::memory_order_relaxed);
          }
        });
      }
    });
  }
  for (auto& t : submitters) t.join();
  for (int t = 0; t < kSubmitters; ++t) {
    for (i64 i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[t][static_cast<std::size_t>(i)].load(), kRounds)
          << "submitter " << t << " index " << i;
    }
  }
  // Quiescence invariant: every queued chunk was executed by exactly one
  // worker; nothing lost, nothing run twice.
  const auto stats = pool.stats();
  EXPECT_EQ(stats.chunks_queued, stats.chunks_executed);
  EXPECT_GT(stats.chunks_inline, 0);  // each submitter runs its own chunk
  EXPECT_GT(stats.submissions, 0);
}

TEST(PoolStress, NestedParallelForDegradesSeriallyWithoutDeadlock) {
  ThreadPool pool(4);
  constexpr i64 kOuter = 64;
  constexpr i64 kInner = 256;
  std::atomic<i64> total{0};
  pool.parallel_for(0, kOuter, 1, [&](i64 ob, i64 oe) {
    for (i64 o = ob; o < oe; ++o) {
      // Reentrant call from inside a worker chunk: must run (serially) and
      // must not deadlock waiting on workers already busy with the outer
      // loop.
      pool.parallel_for(0, kInner, 16, [&](i64 ib, i64 ie) {
        total.fetch_add(ie - ib, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(total.load(), kOuter * kInner);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.chunks_queued, stats.chunks_executed);
}

TEST(PoolStress, StatsPartitionAccountsForEveryChunk) {
  ThreadPool pool(4);  // 1 inline + 3 workers
  pool.parallel_for(0, 400, 100, [](i64, i64) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  const auto stats = pool.stats();
  // Static partition: 4 chunks of 100 — one inline, three queued.
  EXPECT_EQ(stats.chunks_inline, 1);
  EXPECT_EQ(stats.chunks_queued, 3);
  EXPECT_EQ(stats.chunks_executed, 3);
  EXPECT_EQ(stats.submissions, 1);
  EXPECT_EQ(stats.worker_busy_ns.size(), 3u);
  EXPECT_GT(total_busy_ns(stats), 0);
}

TEST(PoolStress, SmallRangeRunsInlineOnly) {
  ThreadPool pool(4);
  std::atomic<i64> total{0};
  pool.parallel_for(0, 10, 100, [&](i64 b, i64 e) {
    total.fetch_add(e - b, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 10);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.chunks_inline, 1);
  EXPECT_EQ(stats.chunks_queued, 0);
  EXPECT_EQ(stats.submissions, 0);  // never touched the queue
}

TEST(PoolStress, ResetStatsZeroesEverything) {
  ThreadPool pool(2);
  pool.parallel_for(0, 1000, 10, [](i64, i64) {});
  pool.reset_stats();
  const auto stats = pool.stats();
  EXPECT_EQ(stats.chunks_queued, 0);
  EXPECT_EQ(stats.chunks_executed, 0);
  EXPECT_EQ(stats.chunks_inline, 0);
  EXPECT_EQ(stats.submissions, 0);
  EXPECT_EQ(total_busy_ns(stats), 0);
}

TEST(PoolStress, GlobalPoolSurvivesMixedStress) {
  // The global pool (sized by LEGW_NUM_THREADS in some registrations of this
  // binary) under the same mixed load the library produces: concurrent
  // submitters, some of which nest.
  auto& pool = ThreadPool::global();
  constexpr int kSubmitters = 4;
  std::atomic<i64> total{0};
  // lint-allow: raw-thread — same: concurrent external submitters.
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int round = 0; round < 10; ++round) {
        pool.parallel_for(0, 512, 32, [&, t](i64 b, i64 e) {
          if (t % 2 == 0) {
            pool.parallel_for(0, 8, 1, [&](i64 ib, i64 ie) {
              total.fetch_add((ie - ib) * (e - b), std::memory_order_relaxed);
            });
          } else {
            total.fetch_add(8 * (e - b), std::memory_order_relaxed);
          }
        });
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(total.load(), i64{kSubmitters} * 10 * 512 * 8);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.chunks_queued, stats.chunks_executed);
}

}  // namespace
}  // namespace legw::core
