// Property tests for the dynamic-batching policy (serve/batcher.hpp). The
// Batcher is a pure state machine over an explicit millisecond clock, so a
// seeded arrival schedule can drive it through thousands of add/pop events
// and check the contract exhaustively:
//   * conservation — every accepted request leaves in exactly one batch,
//   * bucket padding — a request is only ever padded to bucket_for(length),
//   * capacity/deadline — batches never exceed batch_cap and pop_ready(now)
//     leaves nothing overdue behind,
//   * FIFO + determinism — composition is a pure function of the schedule.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <vector>

#include "core/rng.hpp"
#include "serve/batcher.hpp"

namespace legw {
namespace {

using serve::BatchPlan;
using serve::Batcher;
using serve::BatchPolicy;
using serve::Pending;

BatchPolicy test_policy(i64 cap, i64 deadline_ms) {
  BatchPolicy p;
  p.batch_cap = cap;
  p.deadline_ms = deadline_ms;
  p.bucket_lens = {4, 8, 16};
  return p;
}

TEST(BucketFor, SmallestBucketAtLeastLength) {
  const BatchPolicy p = test_policy(8, 5);
  EXPECT_EQ(serve::bucket_for(p, 1), 4);
  EXPECT_EQ(serve::bucket_for(p, 4), 4);
  EXPECT_EQ(serve::bucket_for(p, 5), 8);
  EXPECT_EQ(serve::bucket_for(p, 16), 16);
  // Beyond the largest bucket: an exact-length bucket of its own.
  EXPECT_EQ(serve::bucket_for(p, 17), 17);
  EXPECT_EQ(serve::bucket_for(p, 400), 400);
}

TEST(Batcher, CapacityPopsAFullBucketImmediately) {
  Batcher b(test_policy(3, 1000));
  for (u64 t = 1; t <= 3; ++t) {
    b.add(Pending{t, 2, /*enqueue_ms=*/0});
  }
  const auto plans = b.pop_ready(/*now_ms=*/0);  // nothing is overdue yet
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].reason, BatchPlan::Reason::kCapacity);
  EXPECT_EQ(plans[0].bucket_len, 4);
  EXPECT_EQ(plans[0].rows.size(), 3u);
  EXPECT_TRUE(b.empty());
}

TEST(Batcher, DeadlineFlushesAPartialBucket) {
  Batcher b(test_policy(8, 5));
  b.add(Pending{1, 2, /*enqueue_ms=*/10});
  EXPECT_TRUE(b.pop_ready(/*now_ms=*/14).empty());  // not yet due
  EXPECT_EQ(b.next_deadline_ms(), 15);
  const auto plans = b.pop_ready(/*now_ms=*/15);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].reason, BatchPlan::Reason::kDeadline);
  ASSERT_EQ(plans[0].rows.size(), 1u);
  EXPECT_EQ(plans[0].rows[0].ticket, 1u);
}

TEST(Batcher, DrainEmitsEverythingInCapSizedFifoBatches) {
  Batcher b(test_policy(2, 1000));
  for (u64 t = 1; t <= 5; ++t) b.add(Pending{t, 3, 0});
  const auto plans = b.drain();
  ASSERT_EQ(plans.size(), 3u);
  u64 expect = 1;
  for (const auto& plan : plans) {
    EXPECT_EQ(plan.reason, BatchPlan::Reason::kDrain);
    EXPECT_LE(plan.rows.size(), 2u);
    for (const auto& row : plan.rows) EXPECT_EQ(row.ticket, expect++);
  }
  EXPECT_EQ(expect, 6u);
  EXPECT_TRUE(b.empty());
}

// One seeded run of a random schedule: interleaved adds and pops on an
// advancing clock, final drain. Returns every emitted plan in order.
std::vector<BatchPlan> run_schedule(u64 seed, const BatchPolicy& policy,
                                    int events, std::set<u64>* accepted) {
  core::Rng rng(seed);
  Batcher b(policy);
  std::vector<BatchPlan> plans;
  i64 now = 0;
  u64 ticket = 1;
  for (int e = 0; e < events; ++e) {
    now += static_cast<i64>(rng.uniform(0.0, 4.0));
    if (rng.uniform(0.0, 1.0) < 0.7) {
      const i64 len = 1 + static_cast<i64>(rng.uniform(0.0, 20.0));
      b.add(Pending{ticket, len, now});
      if (accepted != nullptr) accepted->insert(ticket);
      ++ticket;
    } else {
      for (auto& plan : b.pop_ready(now)) plans.push_back(std::move(plan));
    }
  }
  for (auto& plan : b.drain()) plans.push_back(std::move(plan));
  return plans;
}

TEST(BatcherProperty, EveryAcceptedRequestInExactlyOneBatch) {
  for (u64 seed : {1u, 7u, 23u, 99u}) {
    std::set<u64> accepted;
    const auto plans = run_schedule(seed, test_policy(4, 6), 400, &accepted);
    std::map<u64, int> seen;
    for (const auto& plan : plans) {
      for (const auto& row : plan.rows) seen[row.ticket]++;
    }
    ASSERT_EQ(seen.size(), accepted.size()) << "seed " << seed;
    for (u64 t : accepted) {
      EXPECT_EQ(seen[t], 1) << "seed " << seed << " ticket " << t;
    }
  }
}

TEST(BatcherProperty, BucketPaddingAndCapInvariants) {
  const BatchPolicy policy = test_policy(4, 6);
  for (u64 seed : {3u, 11u, 42u}) {
    const auto plans = run_schedule(seed, policy, 400, nullptr);
    ASSERT_FALSE(plans.empty());
    for (const auto& plan : plans) {
      EXPECT_FALSE(plan.rows.empty());
      EXPECT_LE(static_cast<i64>(plan.rows.size()), policy.batch_cap);
      for (const auto& row : plan.rows) {
        // Rows are padded to exactly their own bucket — never a longer one,
        // never one too short to hold them.
        EXPECT_GE(plan.bucket_len, row.length);
        EXPECT_EQ(plan.bucket_len, serve::bucket_for(policy, row.length));
      }
    }
  }
}

TEST(BatcherProperty, PopLeavesNothingOverdue) {
  const BatchPolicy policy = test_policy(4, 6);
  core::Rng rng(17);
  Batcher b(policy);
  i64 now = 0;
  u64 ticket = 1;
  for (int e = 0; e < 500; ++e) {
    now += static_cast<i64>(rng.uniform(0.0, 3.0));
    if (rng.uniform(0.0, 1.0) < 0.6) {
      b.add(Pending{ticket++, 1 + static_cast<i64>(rng.uniform(0.0, 20.0)),
                    now});
    } else {
      b.pop_ready(now);
      // Deadline monotonicity: whatever is still queued is not yet due, so
      // an immediate re-pop yields nothing and the next horizon is ahead of
      // the clock.
      EXPECT_TRUE(b.pop_ready(now).empty()) << "event " << e;
      const i64 next = b.next_deadline_ms();
      if (next >= 0) {
        EXPECT_GT(next, now) << "event " << e;
      }
    }
  }
}

TEST(BatcherProperty, FifoWithinBucket) {
  for (u64 seed : {5u, 31u}) {
    const auto plans = run_schedule(seed, test_policy(4, 6), 400, nullptr);
    std::map<i64, u64> last_ticket;  // bucket -> last emitted ticket
    for (const auto& plan : plans) {
      for (const auto& row : plan.rows) {
        auto it = last_ticket.find(plan.bucket_len);
        if (it != last_ticket.end()) {
          EXPECT_GT(row.ticket, it->second)
              << "seed " << seed << " bucket " << plan.bucket_len;
        }
        last_ticket[plan.bucket_len] = row.ticket;
      }
    }
  }
}

TEST(BatcherProperty, DeterministicCompositionUnderSeededSchedule) {
  for (u64 seed : {2u, 13u, 77u}) {
    const auto a = run_schedule(seed, test_policy(4, 6), 400, nullptr);
    const auto b = run_schedule(seed, test_policy(4, 6), 400, nullptr);
    ASSERT_EQ(a.size(), b.size()) << "seed " << seed;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].bucket_len, b[i].bucket_len);
      EXPECT_EQ(a[i].reason, b[i].reason);
      ASSERT_EQ(a[i].rows.size(), b[i].rows.size());
      for (std::size_t r = 0; r < a[i].rows.size(); ++r) {
        EXPECT_EQ(a[i].rows[r].ticket, b[i].rows[r].ticket);
      }
    }
  }
}

TEST(BatchPolicy, FromEnvClampsAndDefaults) {
  // Baseline: unset -> defaults.
  unsetenv("LEGW_SERVE_BATCH_CAP");
  unsetenv("LEGW_SERVE_DEADLINE_MS");
  BatchPolicy def;
  BatchPolicy p = BatchPolicy::from_env();
  EXPECT_EQ(p.batch_cap, def.batch_cap);
  EXPECT_EQ(p.deadline_ms, def.deadline_ms);

  setenv("LEGW_SERVE_BATCH_CAP", "64", 1);
  setenv("LEGW_SERVE_DEADLINE_MS", "12", 1);
  p = BatchPolicy::from_env();
  EXPECT_EQ(p.batch_cap, 64);
  EXPECT_EQ(p.deadline_ms, 12);

  setenv("LEGW_SERVE_BATCH_CAP", "0", 1);        // below the floor
  setenv("LEGW_SERVE_DEADLINE_MS", "-5", 1);     // negative
  p = BatchPolicy::from_env();
  EXPECT_EQ(p.batch_cap, 1);
  EXPECT_EQ(p.deadline_ms, 0);

  unsetenv("LEGW_SERVE_BATCH_CAP");
  unsetenv("LEGW_SERVE_DEADLINE_MS");
}

}  // namespace
}  // namespace legw
