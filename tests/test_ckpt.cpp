// Checkpoint subsystem: atomic IO, CRC32, RNG state capture, optimizer state
// introspection, full TrainState round trips, v1 compatibility, the
// corrupted-file corpus, crash injection, and retention. Every corruption
// case must come back as a structured ckpt::Status — never an abort — in
// both the default and checked builds (this file runs under both presets).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "ag/ops.hpp"
#include "ckpt/checkpoint.hpp"
#include "ckpt/crc32.hpp"
#include "core/io.hpp"
#include "core/rng.hpp"
#include "nn/conv.hpp"
#include "nn/layers.hpp"
#include "nn/serialize.hpp"
#include "optim/ema.hpp"
#include "optim/optimizer.hpp"
#include "serve/container.hpp"
#include "train/accumulate.hpp"

namespace legw {
namespace {

using core::Rng;
using core::Tensor;

struct TempDir {
  std::string path;
  // Suffixed with the pid: ctest -j runs each test of this binary as its own
  // process, and fixtures reusing a name (CorruptionCorpus's "corpus") must
  // not have one process's teardown remove_all another's live directory.
  explicit TempDir(const char* name)
      : path(std::string("/tmp/legw_ckpt_") + name + "_" +
             std::to_string(::getpid())) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string file(const char* name) const { return path + "/" + name; }
};

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

// Drives a few optimizer steps with a deterministic synthetic gradient so
// per-parameter state (momenta, moments, accumulators) becomes non-trivial.
void run_steps(nn::Module& model, optim::Optimizer& opt, int steps,
               u64 seed) {
  Rng rng(seed);
  opt.set_lr(0.05f);
  for (int s = 0; s < steps; ++s) {
    for (ag::Variable p : opt.params()) {  // cheap shared handle
      Tensor& g = p.mutable_grad();
      for (i64 i = 0; i < g.numel(); ++i) {
        g[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
      }
    }
    opt.step();
    model.zero_grad();
  }
}

bool tensors_equal(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  for (i64 i = 0; i < a.numel(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

// ---- core::AtomicFile -------------------------------------------------------

TEST(AtomicFile, CommitPublishesExactBytes) {
  TempDir dir("atomic_commit");
  const std::string path = dir.file("out.txt");
  core::AtomicFile f(path);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f.write("hello", 5));
  EXPECT_FALSE(std::filesystem::exists(path));  // nothing published yet
  const core::Status st = f.commit();
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(read_file(path), "hello");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(AtomicFile, UncommittedWriteLeavesPreviousContent) {
  TempDir dir("atomic_discard");
  const std::string path = dir.file("out.txt");
  const core::Status st = core::atomic_write_file(path, "old");
  ASSERT_TRUE(st.ok()) << st.message();
  {
    core::AtomicFile f(path);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f.write("new-but-torn", 12));
    // destroyed without commit — models a crash mid-write
  }
  EXPECT_EQ(read_file(path), "old");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(AtomicFile, WriteFileOverwritesAtomically) {
  TempDir dir("atomic_overwrite");
  const std::string path = dir.file("out.txt");
  ASSERT_TRUE(core::atomic_write_file(path, "first").ok());
  ASSERT_TRUE(core::atomic_write_file(path, "second").ok());
  EXPECT_EQ(read_file(path), "second");
}

// ---- ckpt::crc32 ------------------------------------------------------------

TEST(Crc32, MatchesKnownVectors) {
  // The canonical CRC-32/IEEE check value.
  EXPECT_EQ(ckpt::crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(ckpt::crc32("", 0), 0u);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  const u32 clean = ckpt::crc32(data.data(), data.size());
  for (std::size_t byte : {0u, 10u, 42u}) {
    std::string flipped = data;
    flipped[byte] ^= 0x10;
    EXPECT_NE(ckpt::crc32(flipped.data(), flipped.size()), clean);
  }
}

// ---- core::Rng state --------------------------------------------------------

TEST(RngState, ContinuesUniformStreamExactly) {
  Rng a(42);
  for (int i = 0; i < 17; ++i) a.uniform();
  const Rng::State snap = a.state();

  Rng b(999);  // unrelated seed; state overrides it completely
  b.set_state(snap);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.uniform(), b.uniform()) << "draw " << i;
  }
}

TEST(RngState, CapturesBoxMullerCache) {
  // Stop mid-pair: normal() caches the second variate, and a resume that
  // drops the cache would shift every subsequent draw by one.
  Rng a(7);
  (void)a.normal();  // generates a pair, caches one
  const Rng::State snap = a.state();
  EXPECT_TRUE(snap.has_cached);

  Rng b(1);
  b.set_state(snap);
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(a.normal(), b.normal()) << "draw " << i;
    ASSERT_EQ(a.uniform(), b.uniform()) << "draw " << i;
  }
}

// ---- Optimizer::state_entries ----------------------------------------------

TEST(OptimizerState, EveryOptimizerExposesItsState) {
  const struct {
    const char* name;
    std::size_t tensors_per_param;
    std::size_t scalars;  // includes the base steps_done
  } expected[] = {
      {"sgd", 0, 1},      {"momentum", 1, 1}, {"nesterov", 1, 1},
      {"adagrad", 1, 1},  {"rmsprop", 1, 1},  {"adam", 2, 2},
      {"adadelta", 2, 1}, {"lars", 1, 1},     {"lamb", 2, 2},
  };
  for (const auto& e : expected) {
    Rng rng(3);
    nn::Linear model(4, 3, rng);
    auto opt = optim::make_optimizer(e.name, model.parameters(), 0.0f);
    run_steps(model, *opt, 2, 11);
    const auto view = opt->state_entries();
    EXPECT_EQ(view.tensors.size(), e.tensors_per_param * 2) << e.name;
    EXPECT_EQ(view.scalars.size(), e.scalars) << e.name;
    for (const auto& t : view.tensors) {
      EXPECT_NE(t.tensor, nullptr) << e.name << " " << t.name;
    }
  }
}

TEST(OptimizerState, RoundTripReproducesUpdatesBitwise) {
  // For every optimizer: train a few steps, checkpoint, train N more; then
  // restore into a fresh model+optimizer and train the same N — the
  // parameters must match bit for bit (state-dependent updates and all).
  for (const char* name : {"sgd", "momentum", "nesterov", "adagrad", "rmsprop",
                           "adam", "adadelta", "lars", "lamb"}) {
    TempDir dir((std::string("optroundtrip_") + name).c_str());
    const std::string path = dir.file("state.legw");

    Rng rng(3);
    nn::Linear a(4, 3, rng);
    auto opt_a = optim::make_optimizer(name, a.parameters(), 0.01f);
    run_steps(a, *opt_a, 3, 21);
    {
      ckpt::TrainState state;
      state.models.push_back(&a);
      state.optimizers.push_back(opt_a.get());
      state.step = 3;
      const auto res = ckpt::save(state, path);
      ASSERT_TRUE(res.ok()) << name << ": " << res.message;
    }
    run_steps(a, *opt_a, 4, 22);

    Rng rng_b(777);  // different init — restore must overwrite everything
    nn::Linear b(4, 3, rng_b);
    auto opt_b = optim::make_optimizer(name, b.parameters(), 0.01f);
    {
      ckpt::TrainState state;
      state.models.push_back(&b);
      state.optimizers.push_back(opt_b.get());
      const auto res = ckpt::load(state, path);
      ASSERT_TRUE(res.ok()) << name << ": " << res.message;
      EXPECT_EQ(state.step, 3);
    }
    run_steps(b, *opt_b, 4, 22);

    const auto pa = a.parameters();
    const auto pb = b.parameters();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
      EXPECT_TRUE(tensors_equal(pa[i].value(), pb[i].value()))
          << name << " param " << i;
    }
  }
}

TEST(OptimizerState, RejectsWrongOptimizerType) {
  TempDir dir("wrongopt");
  const std::string path = dir.file("state.legw");
  Rng rng(3);
  nn::Linear a(4, 3, rng);
  auto adam = optim::make_optimizer("adam", a.parameters(), 0.0f);
  ckpt::TrainState state;
  state.models.push_back(&a);
  state.optimizers.push_back(adam.get());
  ASSERT_TRUE(ckpt::save(state, path).ok());

  auto lamb = optim::make_optimizer("lamb", a.parameters(), 0.0f);
  ckpt::TrainState other;
  other.models.push_back(&a);
  other.optimizers.push_back(lamb.get());
  const auto res = ckpt::load(other, path);
  EXPECT_EQ(res.status, ckpt::Status::kStateMismatch);
}

// ---- full TrainState round trip ---------------------------------------------

TEST(TrainStateRoundTrip, RestoresEverySection) {
  TempDir dir("full");
  const std::string path = dir.file("full.legw");

  Rng rng(5);
  nn::Linear model(3, 2, rng);
  auto opt = optim::make_optimizer("adam", model.parameters(), 0.0f);
  run_steps(model, *opt, 2, 31);
  optim::EmaWeights ema(model.parameters(), 0.9f);
  ema.update();
  Rng dropout(123);
  for (int i = 0; i < 5; ++i) dropout.uniform();
  Tensor carried = Tensor::randn({2, 4}, rng);

  ckpt::TrainState state;
  state.models.push_back(&model);
  state.optimizers.push_back(opt.get());
  state.emas.push_back(&ema);
  state.rngs.emplace_back("dropout", &dropout);
  state.extra.emplace_back("carried", &carried);
  state.step = 2;
  state.epoch = 1;
  ASSERT_TRUE(ckpt::save(state, path).ok());

  // A divergent copy of everything.
  Rng rng_b(999);
  nn::Linear model_b(3, 2, rng_b);
  auto opt_b = optim::make_optimizer("adam", model_b.parameters(), 0.0f);
  optim::EmaWeights ema_b(model_b.parameters(), 0.9f);
  Rng dropout_b(1);
  Tensor carried_b = Tensor::zeros({2, 4});

  ckpt::TrainState tgt;
  tgt.models.push_back(&model_b);
  tgt.optimizers.push_back(opt_b.get());
  tgt.emas.push_back(&ema_b);
  tgt.rngs.emplace_back("dropout", &dropout_b);
  tgt.extra.emplace_back("carried", &carried_b);
  const auto res = ckpt::load(tgt, path);
  ASSERT_TRUE(res.ok()) << res.message;

  EXPECT_EQ(tgt.step, 2);
  EXPECT_EQ(tgt.epoch, 1);
  const auto pa = model.parameters();
  const auto pb = model_b.parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(tensors_equal(pa[i].value(), pb[i].value())) << "param " << i;
  }
  for (std::size_t i = 0; i < ema.shadow().size(); ++i) {
    EXPECT_TRUE(tensors_equal(ema.shadow()[i], ema_b.shadow()[i]))
        << "shadow " << i;
  }
  EXPECT_TRUE(tensors_equal(carried, carried_b));
  for (int i = 0; i < 20; ++i) ASSERT_EQ(dropout.uniform(), dropout_b.uniform());
}

TEST(TrainStateRoundTrip, RestoresIntoMultipleReplicas) {
  TempDir dir("replicas");
  const std::string path = dir.file("r.legw");
  Rng rng(5);
  nn::Linear source(3, 2, rng);
  auto opt = optim::make_optimizer("momentum", source.parameters(), 0.0f);
  run_steps(source, *opt, 2, 41);
  ckpt::TrainState state;
  state.models.push_back(&source);
  state.optimizers.push_back(opt.get());
  state.step = 2;
  ASSERT_TRUE(ckpt::save(state, path).ok());

  std::vector<std::unique_ptr<nn::Linear>> reps;
  std::vector<std::unique_ptr<optim::Optimizer>> opts;
  ckpt::TrainState tgt;
  for (int r = 0; r < 3; ++r) {
    Rng rr(100 + r);
    reps.push_back(std::make_unique<nn::Linear>(3, 2, rr));
    opts.push_back(
        optim::make_optimizer("momentum", reps.back()->parameters(), 0.0f));
    tgt.models.push_back(reps.back().get());
    tgt.optimizers.push_back(opts.back().get());
  }
  ASSERT_TRUE(ckpt::load(tgt, path).ok());
  for (int r = 0; r < 3; ++r) {
    const auto ps = source.parameters();
    const auto pr = reps[static_cast<std::size_t>(r)]->parameters();
    for (std::size_t i = 0; i < ps.size(); ++i) {
      EXPECT_TRUE(tensors_equal(ps[i].value(), pr[i].value()))
          << "replica " << r << " param " << i;
    }
  }
}

TEST(TrainStateRoundTrip, RestoresModuleBuffers) {
  // BatchNorm running stats are buffers, not parameters — a resume that
  // dropped them would evaluate with fresh statistics.
  TempDir dir("buffers");
  const std::string path = dir.file("bn.legw");
  nn::BatchNorm2d bn(4);
  auto buffers = bn.named_buffers();
  ASSERT_EQ(buffers.size(), 2u);
  Rng rng(9);
  for (auto& b : buffers) {
    for (i64 i = 0; i < b.tensor->numel(); ++i) {
      (*b.tensor)[i] = static_cast<float>(rng.uniform(0.5, 1.5));
    }
  }
  ckpt::TrainState state;
  state.models.push_back(&bn);
  ASSERT_TRUE(ckpt::save(state, path).ok());

  nn::BatchNorm2d bn_b(4);
  ckpt::TrainState tgt;
  tgt.models.push_back(&bn_b);
  ASSERT_TRUE(ckpt::load(tgt, path).ok());
  const auto ba = bn.named_buffers();
  const auto bb = bn_b.named_buffers();
  for (std::size_t i = 0; i < ba.size(); ++i) {
    EXPECT_EQ(ba[i].name, bb[i].name);
    EXPECT_TRUE(tensors_equal(*ba[i].tensor, *bb[i].tensor)) << ba[i].name;
  }
}

TEST(TrainStateRoundTrip, CarriesMidAccumulationGradients) {
  TempDir dir("grads");
  const std::string path = dir.file("acc.legw");
  Rng rng(5);
  nn::Linear model(3, 2, rng);
  train::GradientAccumulator acc(model.parameters());
  for (int m = 0; m < 2; ++m) {
    acc.micro_step([&] {
      Tensor x = Tensor::randn({2, 3}, rng);
      return ag::mean_all(model.forward(ag::Variable::constant(x)));
    });
  }
  ASSERT_EQ(acc.pending_micro_steps(), 2);

  ckpt::TrainState state;
  state.models.push_back(&model);
  state.step = 0;
  state.micro_step = acc.pending_micro_steps();
  ASSERT_TRUE(ckpt::save(state, path).ok());

  Rng rng_b(88);
  nn::Linear model_b(3, 2, rng_b);
  train::GradientAccumulator acc_b(model_b.parameters());
  ckpt::TrainState tgt;
  tgt.models.push_back(&model_b);
  ASSERT_TRUE(ckpt::load(tgt, path).ok());
  EXPECT_EQ(tgt.micro_step, 2);
  acc_b.restore_pending(tgt.micro_step);
  EXPECT_EQ(acc_b.pending_micro_steps(), 2);
  const auto pa = model.parameters();
  const auto pb = model_b.parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(tensors_equal(pa[i].grad(), pb[i].grad())) << "grad " << i;
  }
}

TEST(TrainStateRoundTrip, ReadsV1ParameterOnlyFiles) {
  TempDir dir("v1");
  const std::string path = dir.file("v1.ckpt");
  Rng rng(5);
  nn::Linear a(4, 3, rng);
  ASSERT_TRUE(nn::save_checkpoint(a, path).ok());  // v1 writer

  Rng rng_b(99);
  nn::Linear b(4, 3, rng_b);
  auto opt_b = optim::make_optimizer("momentum", b.parameters(), 0.0f);
  ckpt::TrainState tgt;
  tgt.models.push_back(&b);
  tgt.optimizers.push_back(opt_b.get());
  tgt.step = 55;  // must survive: v1 has no counters
  const auto res = ckpt::load(tgt, path);
  ASSERT_TRUE(res.ok()) << res.message;
  EXPECT_NE(res.message.find("v1"), std::string::npos);
  EXPECT_EQ(tgt.step, 55);
  const auto pa = a.parameters();
  const auto pb = b.parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(tensors_equal(pa[i].value(), pb[i].value())) << "param " << i;
  }
}

// ---- corruption corpus ------------------------------------------------------

// Builds one reference checkpoint image plus the live state to load into,
// then checks that a mutated copy is rejected with a structured status and
// that the rejection leaves the live state untouched.
class CorruptionCorpus : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("corpus");
    Rng rng(5);
    model_ = std::make_unique<nn::Linear>(3, 2, rng);
    opt_ = optim::make_optimizer("adam", model_->parameters(), 0.0f);
    run_steps(*model_, *opt_, 2, 51);
    ckpt::TrainState state;
    state.models.push_back(model_.get());
    state.optimizers.push_back(opt_.get());
    state.step = 2;
    image_ = ckpt::encode(state);
  }

  // Loads `bytes` as a checkpoint file into a fresh target; returns the
  // status and asserts the target kept its pre-load parameter values.
  ckpt::Status load_mutated(const std::string& bytes) {
    const std::string path = dir_->file("mutated.legw");
    write_file(path, bytes);
    Rng rng(42);
    nn::Linear target(3, 2, rng);
    auto opt = optim::make_optimizer("adam", target.parameters(), 0.0f);
    std::vector<Tensor> before;
    for (const auto& p : target.parameters()) before.push_back(p.value());
    ckpt::TrainState tgt;
    tgt.models.push_back(&target);
    tgt.optimizers.push_back(opt.get());
    const auto res = ckpt::load(tgt, path);
    if (!res.ok()) {
      const auto after = target.parameters();
      for (std::size_t i = 0; i < after.size(); ++i) {
        EXPECT_TRUE(tensors_equal(before[i], after[i].value()))
            << "failed load mutated param " << i;
      }
    }
    return res.status;
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<nn::Linear> model_;
  std::unique_ptr<optim::Optimizer> opt_;
  std::string image_;
};

TEST_F(CorruptionCorpus, IntactImageLoads) {
  EXPECT_EQ(load_mutated(image_), ckpt::Status::kOk);
}

TEST_F(CorruptionCorpus, TruncationAtEveryBoundaryIsRejected) {
  // Cut the file at a spread of prefixes: inside the magic, the header,
  // every section header and payload, and one byte short of complete.
  std::vector<std::size_t> cuts = {0, 4, 9, 13, 15};
  for (std::size_t frac = 1; frac < 20; ++frac) {
    cuts.push_back(image_.size() * frac / 20);
  }
  cuts.push_back(image_.size() - 1);
  for (std::size_t cut : cuts) {
    ASSERT_LT(cut, image_.size());
    const ckpt::Status s = load_mutated(image_.substr(0, cut));
    EXPECT_NE(s, ckpt::Status::kOk) << "cut at " << cut;
  }
}

TEST_F(CorruptionCorpus, ZeroLengthFileIsRejected) {
  EXPECT_EQ(load_mutated(""), ckpt::Status::kTruncated);
}

TEST_F(CorruptionCorpus, MissingFileIsOpenFailed) {
  Rng rng(1);
  nn::Linear target(3, 2, rng);
  ckpt::TrainState tgt;
  tgt.models.push_back(&target);
  const auto res = ckpt::load(tgt, dir_->file("never-written.legw"));
  EXPECT_EQ(res.status, ckpt::Status::kOpenFailed);
}

TEST_F(CorruptionCorpus, BitFlipsAreRejectedEverywhere) {
  // One flipped bit anywhere in the image must be detected: magic/version
  // flips by the header checks, length/count flips by the schema caps, and
  // payload flips by the per-section CRC32.
  std::vector<std::size_t> offsets = {0, 5, 8, 12, 14, 20, 30};
  for (std::size_t frac = 1; frac < 16; ++frac) {
    offsets.push_back(image_.size() * frac / 16);
  }
  offsets.push_back(image_.size() - 1);
  for (std::size_t off : offsets) {
    ASSERT_LT(off, image_.size());
    for (int bit : {0, 7}) {
      std::string flipped = image_;
      flipped[off] = static_cast<char>(flipped[off] ^ (1 << bit));
      const ckpt::Status s = load_mutated(flipped);
      EXPECT_NE(s, ckpt::Status::kOk)
          << "undetected flip at byte " << off << " bit " << bit;
    }
  }
}

TEST_F(CorruptionCorpus, TrailingGarbageIsRejected) {
  EXPECT_EQ(load_mutated(image_ + "xxxx"), ckpt::Status::kMalformed);
}

TEST_F(CorruptionCorpus, ForeignFileIsBadMagic) {
  EXPECT_EQ(load_mutated("definitely not a checkpoint file, long enough"),
            ckpt::Status::kBadMagic);
}

TEST_F(CorruptionCorpus, UnsupportedFutureVersionIsRejected) {
  std::string future = image_;
  future[8] = 99;  // version field follows the 8-byte magic
  EXPECT_EQ(load_mutated(future), ckpt::Status::kBadVersion);
}

// ---- corruption corpus, serve load path -------------------------------------
// The same corpus must be rejected with structured statuses by the no-tape
// serving reader (serve::read_model_image_bytes), which parses the container
// independently of ckpt::load.

serve::Status serve_status(const std::string& bytes) {
  serve::ModelImage img;
  return serve::read_model_image_bytes(bytes, &img).status;
}

TEST_F(CorruptionCorpus, ServeReaderAcceptsTheIntactImage) {
  serve::ModelImage img;
  const auto res = serve::read_model_image_bytes(image_, &img);
  ASSERT_TRUE(res.ok()) << res.message;
  EXPECT_EQ(img.step, 2);
  EXPECT_FALSE(img.params.empty());
  EXPECT_EQ(img.optimizer, "adam");
}

TEST_F(CorruptionCorpus, ServeReaderRejectsTruncationAtEveryBoundary) {
  std::vector<std::size_t> cuts = {0, 4, 9, 13, 15};
  for (std::size_t frac = 1; frac < 20; ++frac) {
    cuts.push_back(image_.size() * frac / 20);
  }
  cuts.push_back(image_.size() - 1);
  for (std::size_t cut : cuts) {
    ASSERT_LT(cut, image_.size());
    EXPECT_NE(serve_status(image_.substr(0, cut)), serve::Status::kOk)
        << "cut at " << cut;
  }
}

TEST_F(CorruptionCorpus, ServeReaderRejectsBitFlipsEverywhere) {
  std::vector<std::size_t> offsets = {0, 5, 8, 12, 14, 20, 30};
  for (std::size_t frac = 1; frac < 16; ++frac) {
    offsets.push_back(image_.size() * frac / 16);
  }
  offsets.push_back(image_.size() - 1);
  for (std::size_t off : offsets) {
    ASSERT_LT(off, image_.size());
    for (int bit : {0, 7}) {
      std::string flipped = image_;
      flipped[off] = static_cast<char>(flipped[off] ^ (1 << bit));
      EXPECT_NE(serve_status(flipped), serve::Status::kOk)
          << "undetected flip at byte " << off << " bit " << bit;
    }
  }
}

TEST_F(CorruptionCorpus, ServeReaderRefusesV1FilesWithMissingSections) {
  // Property of the v1 -> v2 compat split: training restores v1 files
  // (parameters only), serving refuses them with a structured status naming
  // the sections a v2 re-save would add — never an abort.
  Rng rng(5);
  nn::Linear model(3, 2, rng);
  const std::string path = dir_->file("v1_for_serve.ckpt");
  ASSERT_TRUE(nn::save_checkpoint(model, path).ok());  // v1 writer

  // Training-side load succeeds on the same file.
  nn::Linear target(3, 2, rng);
  ckpt::TrainState tgt;
  tgt.models.push_back(&target);
  ASSERT_TRUE(ckpt::load(tgt, path).ok());

  serve::ModelImage img;
  const auto res = serve::read_model_image(path, &img);
  EXPECT_EQ(res.status, serve::Status::kMissingSection);
  EXPECT_NE(res.message.find("v1"), std::string::npos) << res.message;
  EXPECT_NE(res.message.find("meta"), std::string::npos) << res.message;
  EXPECT_NE(res.message.find("buffers"), std::string::npos) << res.message;
  EXPECT_NE(res.message.find(path), std::string::npos)
      << "failure should carry the path: " << res.message;
}

TEST_F(CorruptionCorpus, ServeReaderStatusTaxonomyMatchesTheFailure) {
  EXPECT_EQ(serve_status(""), serve::Status::kTruncated);
  EXPECT_EQ(serve_status("definitely not a checkpoint file, long enough"),
            serve::Status::kBadMagic);
  EXPECT_EQ(serve_status(image_ + "xxxx"), serve::Status::kMalformed);
  std::string future = image_;
  future[8] = 99;
  EXPECT_EQ(serve_status(future), serve::Status::kBadVersion);
  // Flip one payload byte inside the last section: the CRC must catch it.
  std::string payload_flip = image_;
  payload_flip[image_.size() - 1] =
      static_cast<char>(payload_flip[image_.size() - 1] ^ 0x10);
  EXPECT_EQ(serve_status(payload_flip), serve::Status::kCrcMismatch);
  serve::ModelImage img;
  const auto missing =
      serve::read_model_image("/tmp/legw_ckpt_never_written.legw", &img);
  EXPECT_EQ(missing.status, serve::Status::kOpenFailed);
}

// ---- CheckpointManager ------------------------------------------------------

ckpt::TrainState make_state(nn::Linear& model, optim::Optimizer* opt,
                            i64 step) {
  ckpt::TrainState s;
  s.models.push_back(&model);
  s.optimizers.push_back(opt);
  s.step = step;
  return s;
}

TEST(CheckpointManager, CadenceAndRetention) {
  TempDir dir("mgr");
  ckpt::ManagerConfig cfg;
  cfg.dir = dir.file("ckpts");
  cfg.every_steps = 2;
  cfg.keep_last = 2;
  ckpt::CheckpointManager mgr(cfg);
  EXPECT_FALSE(mgr.due(0));
  EXPECT_FALSE(mgr.due(1));
  EXPECT_TRUE(mgr.due(2));

  Rng rng(5);
  nn::Linear model(3, 2, rng);
  auto opt = optim::make_optimizer("momentum", model.parameters(), 0.0f);
  for (i64 step = 1; step <= 8; ++step) {
    run_steps(model, *opt, 1, 60 + static_cast<u64>(step));
    const auto res = mgr.maybe_save(make_state(model, opt.get(), step));
    ASSERT_TRUE(res.ok()) << res.message;
  }
  const auto files = ckpt::CheckpointManager::list_checkpoints(cfg.dir);
  ASSERT_EQ(files.size(), 2u);  // steps 6 and 8 survive retention
  EXPECT_NE(files[0].find("000000000006"), std::string::npos);
  EXPECT_NE(files[1].find("000000000008"), std::string::npos);
}

TEST(CheckpointManager, MidWriteCrashLeavesPreviousCheckpointIntact) {
  TempDir dir("midwrite");
  const auto plan = ckpt::CrashPlan::mid_write(4, 0.6);
  ckpt::ManagerConfig cfg;
  cfg.dir = dir.file("ckpts");
  cfg.every_steps = 2;
  cfg.crash = &plan;
  ckpt::CheckpointManager mgr(cfg);

  Rng rng(5);
  nn::Linear model(3, 2, rng);
  auto opt = optim::make_optimizer("momentum", model.parameters(), 0.0f);
  run_steps(model, *opt, 1, 71);
  ASSERT_TRUE(mgr.maybe_save(make_state(model, opt.get(), 2)).ok());
  std::vector<Tensor> at_step2;
  for (const auto& p : model.parameters()) at_step2.push_back(p.value());

  run_steps(model, *opt, 1, 72);
  const auto res = mgr.maybe_save(make_state(model, opt.get(), 4));
  EXPECT_EQ(res.status, ckpt::Status::kSimulatedCrash);

  // The kill left a torn .tmp, never a published step-4 file.
  EXPECT_FALSE(std::filesystem::exists(
      ckpt::CheckpointManager::step_path(cfg.dir, 4)));
  EXPECT_TRUE(std::filesystem::exists(
      ckpt::CheckpointManager::step_path(cfg.dir, 4) + ".tmp"));

  // Restore falls back to the intact step-2 checkpoint.
  Rng rng_b(99);
  nn::Linear model_b(3, 2, rng_b);
  auto opt_b = optim::make_optimizer("momentum", model_b.parameters(), 0.0f);
  ckpt::TrainState tgt = make_state(model_b, opt_b.get(), 0);
  const auto outcome = mgr.restore_latest(tgt);
  ASSERT_TRUE(outcome.restored) << outcome.status.message;
  EXPECT_EQ(tgt.step, 2);
  const auto pb = model_b.parameters();
  for (std::size_t i = 0; i < pb.size(); ++i) {
    EXPECT_TRUE(tensors_equal(at_step2[i], pb[i].value())) << "param " << i;
  }
}

TEST(CheckpointManager, TornPublishIsSkippedOnRestore) {
  TempDir dir("torn");
  const auto plan = ckpt::CrashPlan::torn_publish(4, 0.5);
  ckpt::ManagerConfig cfg;
  cfg.dir = dir.file("ckpts");
  cfg.every_steps = 2;
  cfg.crash = &plan;
  ckpt::CheckpointManager mgr(cfg);

  Rng rng(5);
  nn::Linear model(3, 2, rng);
  auto opt = optim::make_optimizer("momentum", model.parameters(), 0.0f);
  run_steps(model, *opt, 1, 81);
  ASSERT_TRUE(mgr.maybe_save(make_state(model, opt.get(), 2)).ok());
  run_steps(model, *opt, 1, 82);
  EXPECT_EQ(mgr.maybe_save(make_state(model, opt.get(), 4)).status,
            ckpt::Status::kSimulatedCrash);
  // The torn file *is* at the final path — the adversarial case.
  ASSERT_TRUE(std::filesystem::exists(
      ckpt::CheckpointManager::step_path(cfg.dir, 4)));

  Rng rng_b(99);
  nn::Linear model_b(3, 2, rng_b);
  auto opt_b = optim::make_optimizer("momentum", model_b.parameters(), 0.0f);
  ckpt::TrainState tgt = make_state(model_b, opt_b.get(), 0);
  const auto outcome = mgr.restore_latest(tgt);
  ASSERT_TRUE(outcome.restored);
  EXPECT_EQ(tgt.step, 2);  // fell back past the torn step-4 file
  ASSERT_EQ(outcome.skipped.size(), 1u);
  EXPECT_NE(outcome.skipped[0].path.find("000000000004"), std::string::npos);
  EXPECT_NE(outcome.skipped[0].status, ckpt::Status::kOk);
  EXPECT_FALSE(outcome.skipped[0].message.empty());
}

TEST(CheckpointManager, EmptyDirIsNoCheckpointNotError) {
  TempDir dir("empty");
  ckpt::ManagerConfig cfg;
  cfg.dir = dir.file("nothing-here");
  ckpt::CheckpointManager mgr(cfg);
  Rng rng(5);
  nn::Linear model(3, 2, rng);
  ckpt::TrainState tgt;
  tgt.models.push_back(&model);
  const auto outcome = mgr.restore_latest(tgt);
  EXPECT_FALSE(outcome.restored);
  EXPECT_EQ(outcome.status.status, ckpt::Status::kNoCheckpoint);
}

TEST(CrashPlan, SeededRandomKillsAreDeterministic) {
  const auto a = ckpt::CrashPlan::random_kills(7, 100, 5);
  const auto b = ckpt::CrashPlan::random_kills(7, 100, 5);
  ASSERT_EQ(a.crashes.size(), 5u);
  for (std::size_t i = 0; i < a.crashes.size(); ++i) {
    EXPECT_EQ(a.crashes[i].at_step, b.crashes[i].at_step);
    EXPECT_EQ(a.crashes[i].kind, b.crashes[i].kind);
    EXPECT_EQ(a.crashes[i].write_fraction, b.crashes[i].write_fraction);
  }
  // Steps are distinct and in range.
  for (const auto& c : a.crashes) {
    EXPECT_GE(c.at_step, 1);
    EXPECT_LE(c.at_step, 100);
    EXPECT_EQ(a.crash_at(c.at_step), &c);
  }
  EXPECT_EQ(a.crash_at(0), nullptr);
}

}  // namespace
}  // namespace legw
