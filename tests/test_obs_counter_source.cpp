// Concurrency contract of obs::register_counter_source: registration is
// thread-safe against other registrations AND against counters() snapshots
// taken while registration is still in flight, and it is idempotent — a
// source registered from N racing threads merges exactly once per snapshot.
//
// Rides in legw_concurrency_tests (label tier1-concurrency), so the tsan
// preset replays these races under ThreadSanitizer.
#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.hpp"

namespace legw {
namespace {

// Template-stamped sources: each instantiation is a distinct function
// pointer with its own key and invocation counter, so one test run can
// register many independent sources without runtime state.
template <int I>
std::atomic<i64>& invocations() {
  static std::atomic<i64> count{0};
  return count;
}

template <int I>
void stamped_source(std::map<std::string, i64>& out) {
  invocations<I>().fetch_add(1, std::memory_order_relaxed);
  out["test.counter_source." + std::to_string(I)] = I;
}

// Runtime-indexable table over the compile-time stamps.
using Source = void (*)(std::map<std::string, i64>&);
constexpr Source kSources[] = {
    &stamped_source<0>, &stamped_source<1>, &stamped_source<2>,
    &stamped_source<3>, &stamped_source<4>, &stamped_source<5>,
    &stamped_source<6>, &stamped_source<7>,
};
constexpr int kNumSources = 8;

TEST(ObsCounterSource, ConcurrentRegistrationAndSnapshotIsSafe) {
  // Half the threads register (every thread registers EVERY source, so each
  // source races with itself across threads — the idempotency path), half
  // take counters() snapshots mid-registration.
  constexpr int kRegistrars = 4;
  constexpr int kSnapshotters = 4;
  std::atomic<bool> go{false};

  // lint-allow: raw-thread — the test *is* about cross-thread registration;
  // pool tasks would serialise behind parallel_for's submit lock.
  std::vector<std::thread> threads;
  threads.reserve(kRegistrars + kSnapshotters);
  for (int t = 0; t < kRegistrars; ++t) {
    threads.emplace_back([&go] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (const Source s : kSources) obs::register_counter_source(s);
    });
  }
  for (int t = 0; t < kSnapshotters; ++t) {
    threads.emplace_back([&go] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < 8; ++i) {
        const auto snap = obs::TraceRecorder::global().counters();
        // A snapshot taken mid-registration sees a prefix of the sources;
        // any key that IS present must carry the source's value.
        for (int s = 0; s < kNumSources; ++s) {
          const auto it =
              snap.find("test.counter_source." + std::to_string(s));
          if (it != snap.end()) {
            EXPECT_EQ(it->second, s);
          }
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  // After the dust settles every source is registered and one snapshot
  // invokes each exactly once — N racing registrations collapsed to one
  // registry entry apiece.
  const i64 before[kNumSources] = {
      invocations<0>().load(), invocations<1>().load(),
      invocations<2>().load(), invocations<3>().load(),
      invocations<4>().load(), invocations<5>().load(),
      invocations<6>().load(), invocations<7>().load(),
  };
  const auto snap = obs::TraceRecorder::global().counters();
  for (int s = 0; s < kNumSources; ++s) {
    const std::string key = "test.counter_source." + std::to_string(s);
    ASSERT_TRUE(snap.count(key)) << key << " missing after registration";
    EXPECT_EQ(snap.at(key), s);
  }
  const i64 after[kNumSources] = {
      invocations<0>().load(), invocations<1>().load(),
      invocations<2>().load(), invocations<3>().load(),
      invocations<4>().load(), invocations<5>().load(),
      invocations<6>().load(), invocations<7>().load(),
  };
  for (int s = 0; s < kNumSources; ++s) {
    EXPECT_EQ(after[s] - before[s], 1)
        << "source " << s << " merged " << (after[s] - before[s])
        << " times in one counters() call (want exactly 1)";
  }
}

TEST(ObsCounterSource, ReRegistrationStaysIdempotent) {
  // Serial double-registration after the concurrent test: still one merge
  // per snapshot.
  obs::register_counter_source(kSources[0]);
  obs::register_counter_source(kSources[0]);
  const i64 before = invocations<0>().load();
  (void)obs::TraceRecorder::global().counters();
  EXPECT_EQ(invocations<0>().load() - before, 1);
}

}  // namespace
}  // namespace legw
