// End-to-end stability-sentinel acceptance: for every runner, a seeded
// injected anomaly (NaN / loss spike / gradient explosion) must be detected,
// rolled back to the newest blessed checkpoint, and recovered from — and the
// post-rollback trajectory must be bitwise-identical to the same protect-mode
// run with no anomaly at all (level-1 mitigation retries as-is, and a
// detected anomaly never reaches the optimizer). Escalation, ladder
// exhaustion, crash-mid-recovery resume, and observe-mode transparency ride
// along.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "core/flags.hpp"
#include "core/rng.hpp"
#include "guard/sentinel.hpp"
#include "nn/layers.hpp"
#include "obs/trace.hpp"
#include "optim/optimizer.hpp"
#include "sched/schedule.hpp"
#include "train/runners.hpp"

namespace legw::train {
namespace {

struct TempDir {
  std::string path;
  // Pid-suffixed: ctest -j runs each test as its own process.
  explicit TempDir(const std::string& name)
      : path("/tmp/legw_guard_e2e_" + name + "_" + std::to_string(getpid())) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

void expect_params_equal(const RunResult& a, const RunResult& b,
                         const char* tag) {
  ASSERT_FALSE(a.final_params.empty()) << tag;
  ASSERT_EQ(a.final_params.size(), b.final_params.size()) << tag;
  for (std::size_t p = 0; p < a.final_params.size(); ++p) {
    const core::Tensor& x = a.final_params[p];
    const core::Tensor& y = b.final_params[p];
    ASSERT_EQ(x.numel(), y.numel()) << tag << " param " << p;
    for (i64 i = 0; i < x.numel(); ++i) {
      ASSERT_EQ(x[i], y[i]) << tag << " param " << p << " elem " << i;
    }
  }
}

// Small-but-real sentinel geometry: relative baselines have history by step
// 4, checkpoints ripen after 2 healthy steps.
guard::SentinelConfig test_sentinel() {
  guard::SentinelConfig c;
  c.enabled = true;
  c.window = 8;
  c.min_history = 4;
  c.bless_after = 2;
  return c;
}

// 24-step seeded mnist run; checkpoint cadence 2, everything retained so the
// tests can reason about exact rollback targets.
RunConfig mnist_run(const sched::LrSchedule* schedule,
                    const std::string& dir) {
  RunConfig run;
  run.batch_size = 32;
  run.epochs = 6;  // 4 steps/epoch -> 24 steps
  run.optimizer = "momentum";
  run.schedule = schedule;
  run.final_eval_only = true;
  run.capture_final_params = true;
  run.checkpoint_dir = dir;
  run.checkpoint_every_steps = 2;
  run.checkpoint_keep_last = 0;
  run.sentinel = test_sentinel();
  return run;
}

using Runner = std::function<RunResult(const RunConfig&)>;

// The core acceptance scenario: a protect-mode run with one injected anomaly
// must complete, having detected + rolled back exactly once, with final
// parameters bitwise-equal to the anomaly-free protect run (level-1
// mitigation replays the blessed trajectory as-is).
void expect_single_anomaly_recovery(const Runner& go, const RunConfig& base,
                                    const guard::AnomalyPlan& plan,
                                    const std::string& tag) {
  TempDir clean_dir(tag + "_clean");
  TempDir anom_dir(tag + "_anom");

  RunConfig clean = base;
  clean.checkpoint_dir = clean_dir.path;
  const RunResult ref = go(clean);
  ASSERT_FALSE(ref.diverged) << tag;
  EXPECT_EQ(ref.guard_anomalies, 0) << tag;
  EXPECT_EQ(ref.guard_rollbacks, 0) << tag;

  RunConfig anom = base;
  anom.checkpoint_dir = anom_dir.path;
  anom.anomaly_plan = &plan;
  const RunResult got = go(anom);
  ASSERT_FALSE(got.diverged) << tag << ": recovery did not complete";
  EXPECT_FALSE(got.interrupted) << tag;
  EXPECT_EQ(got.guard_anomalies, 1) << tag << ": anomaly not detected";
  EXPECT_EQ(got.guard_rollbacks, 1) << tag << ": rollback not performed";
  EXPECT_EQ(got.guard_escalation_max, 1) << tag;
  EXPECT_FALSE(got.guard_failed) << tag;
  expect_params_equal(ref, got, tag.c_str());
}

// ---- anomaly classes x mnist ------------------------------------------------

TEST(GuardRecovery, MnistNaNDetectedAndRecovered) {
  data::SyntheticMnist dataset(128, 32, 42);
  models::MnistLstmConfig mcfg;
  mcfg.transform_dim = 16;
  mcfg.hidden_dim = 16;
  sched::ConstantLr schedule(0.1f);
  const auto plan = guard::AnomalyPlan::nan_at(10);
  expect_single_anomaly_recovery(
      [&](const RunConfig& r) { return train_mnist(dataset, mcfg, r); },
      mnist_run(&schedule, ""), plan, "mnist_nan");
}

TEST(GuardRecovery, MnistLossSpikeDetectedAndRecovered) {
  data::SyntheticMnist dataset(128, 32, 42);
  models::MnistLstmConfig mcfg;
  mcfg.transform_dim = 16;
  mcfg.hidden_dim = 16;
  sched::ConstantLr schedule(0.1f);
  const auto plan = guard::AnomalyPlan::loss_spike_at(10, 1e3f);
  expect_single_anomaly_recovery(
      [&](const RunConfig& r) { return train_mnist(dataset, mcfg, r); },
      mnist_run(&schedule, ""), plan, "mnist_spike");
}

TEST(GuardRecovery, MnistGradExplosionDetectedAndRecovered) {
  data::SyntheticMnist dataset(128, 32, 42);
  models::MnistLstmConfig mcfg;
  mcfg.transform_dim = 16;
  mcfg.hidden_dim = 16;
  sched::ConstantLr schedule(0.1f);
  const auto plan = guard::AnomalyPlan::grad_explosion_at(10, 1e6f);
  expect_single_anomaly_recovery(
      [&](const RunConfig& r) { return train_mnist(dataset, mcfg, r); },
      mnist_run(&schedule, ""), plan, "mnist_grad");
}

// ---- the other three runners ------------------------------------------------

TEST(GuardRecovery, PtbAnomaliesRecoverWithCarriedStateAndDropout) {
  data::CorpusConfig ccfg;
  ccfg.vocab = 40;
  ccfg.n_train_tokens = 1200;
  ccfg.n_valid_tokens = 200;
  data::SyntheticCorpus corpus(ccfg);
  models::PtbConfig mcfg = models::PtbConfig::small(40);
  mcfg.embed_dim = 16;
  mcfg.hidden_dim = 16;
  mcfg.bptt_len = 8;
  mcfg.dropout = 0.2f;  // the dropout RNG must replay through the rollback
  sched::ConstantLr schedule(0.5f);
  RunConfig base = mnist_run(&schedule, "");
  base.batch_size = 8;
  base.epochs = 2;
  const Runner go = [&](const RunConfig& r) {
    return train_ptb(corpus, mcfg, r);
  };
  expect_single_anomaly_recovery(go, base, guard::AnomalyPlan::nan_at(10),
                                 "ptb_nan");
  expect_single_anomaly_recovery(
      go, base, guard::AnomalyPlan::loss_spike_at(10, 1e3f), "ptb_spike");
}

TEST(GuardRecovery, GnmtNaNDetectedAndRecovered) {
  data::TranslationConfig tcfg;
  tcfg.n_train = 60;
  tcfg.n_test = 10;
  tcfg.src_vocab = 30;
  tcfg.tgt_vocab = 30;
  tcfg.min_len = 3;
  tcfg.max_len = 5;
  data::SyntheticTranslation dataset(tcfg);
  models::GnmtConfig mcfg;
  mcfg.hidden_dim = 12;
  mcfg.embed_dim = 12;
  mcfg.num_layers = 2;
  mcfg.residual_start = 2;
  mcfg.dropout = 0.1f;
  sched::ConstantLr schedule(0.01f);
  RunConfig base = mnist_run(&schedule, "");
  base.batch_size = 20;
  base.epochs = 4;  // 3 steps/epoch -> 12 steps
  base.optimizer = "adam";
  expect_single_anomaly_recovery(
      [&](const RunConfig& r) { return train_gnmt(dataset, mcfg, r); }, base,
      guard::AnomalyPlan::nan_at(6), "gnmt_nan");
}

TEST(GuardRecovery, ResnetNaNDetectedAndRecovered) {
  data::SyntheticImages dataset(96, 24, 42);
  models::ResNetConfig mcfg;
  mcfg.width = 4;
  mcfg.blocks_per_stage = 1;
  sched::ConstantLr schedule(0.05f);
  RunConfig base = mnist_run(&schedule, "");
  base.epochs = 4;  // 3 steps/epoch -> 12 steps
  expect_single_anomaly_recovery(
      [&](const RunConfig& r) { return train_resnet(dataset, mcfg, r); },
      base, guard::AnomalyPlan::nan_at(6), "resnet_nan");
}

// ---- escalation -------------------------------------------------------------

TEST(GuardRecovery, EscalatingMitigationIsDeterministic) {
  data::SyntheticMnist dataset(128, 32, 42);
  models::MnistLstmConfig mcfg;
  mcfg.transform_dim = 16;
  mcfg.hidden_dim = 16;
  sched::ConstantLr schedule(0.1f);
  // Back-to-back anomalies: the second fires during recovery, escalating to
  // level 2 (LR backoff + re-warmup ramp).
  guard::AnomalyPlan plan = guard::AnomalyPlan::loss_spike_at(10, 1e3f);
  plan.add(11, guard::AnomalyPlan::Kind::kLossSpike, 1e3f);

  auto go = [&](const std::string& tag) {
    TempDir dir(tag);
    RunConfig run = mnist_run(&schedule, dir.path);
    run.mitigation.rewarm_steps = 4;
    run.anomaly_plan = &plan;
    return train_mnist(dataset, mcfg, run);
  };
  const RunResult a = go("esc_a");
  ASSERT_FALSE(a.diverged);
  EXPECT_EQ(a.guard_anomalies, 2);
  EXPECT_EQ(a.guard_rollbacks, 2);
  EXPECT_EQ(a.guard_escalation_max, 2);
  EXPECT_FALSE(a.guard_failed);
  // The mitigated trajectory (backed-off LR, re-warmup) is itself seeded and
  // deterministic: a second identical run reproduces it bitwise.
  const RunResult b = go("esc_b");
  expect_params_equal(a, b, "escalation determinism");
}

TEST(GuardRecovery, ExhaustedLadderFailsWithStructuredReport) {
  data::SyntheticMnist dataset(128, 32, 42);
  models::MnistLstmConfig mcfg;
  mcfg.transform_dim = 16;
  mcfg.hidden_dim = 16;
  sched::ConstantLr schedule(0.1f);
  guard::AnomalyPlan plan = guard::AnomalyPlan::loss_spike_at(10, 1e3f);
  plan.add(11, guard::AnomalyPlan::Kind::kLossSpike, 1e3f)
      .add(12, guard::AnomalyPlan::Kind::kLossSpike, 1e3f);
  TempDir dir("exhaust");
  RunConfig run = mnist_run(&schedule, dir.path);
  run.mitigation.max_escalations = 2;
  run.mitigation.rewarm_steps = 16;  // keep the episode open across replays
  run.anomaly_plan = &plan;
  const RunResult got = train_mnist(dataset, mcfg, run);
  EXPECT_TRUE(got.guard_failed);
  EXPECT_TRUE(got.diverged);
  EXPECT_EQ(got.guard_anomalies, 3);
  EXPECT_EQ(got.guard_rollbacks, 2);  // the third anomaly exhausts the ladder
  EXPECT_EQ(got.guard_escalation_max, 2);
  ASSERT_FALSE(got.guard_report.empty());
  EXPECT_NE(got.guard_report.find("ladder exhausted"), std::string::npos);
  EXPECT_NE(got.guard_report.find("loss_spike"), std::string::npos);
}

// ---- crash mid-recovery -----------------------------------------------------

TEST(GuardRecovery, CrashMidRecoveryResumesWithLedgerIntact) {
  data::SyntheticMnist dataset(128, 32, 42);
  models::MnistLstmConfig mcfg;
  mcfg.transform_dim = 16;
  mcfg.hidden_dim = 16;
  sched::ConstantLr schedule(0.1f);
  const auto plan = guard::AnomalyPlan::loss_spike_at(10, 1e3f);

  // Reference: the anomaly recovery running to completion uninterrupted.
  TempDir ref_dir("crash_ref");
  RunConfig ref_run = mnist_run(&schedule, ref_dir.path);
  ref_run.anomaly_plan = &plan;
  const RunResult ref = train_mnist(dataset, mcfg, ref_run);
  ASSERT_FALSE(ref.diverged);
  ASSERT_EQ(ref.guard_rollbacks, 1);

  // The same run killed mid-replay: anomaly at 10 rolls back to the blessed
  // step-8 checkpoint, and the injected kill fires at step 12 of the replay
  // — after the rollback machinery ran, before the episode is over.
  TempDir dir("crash_mid");
  const auto crash = ckpt::CrashPlan::mid_step(12);
  RunConfig killed_run = mnist_run(&schedule, dir.path);
  killed_run.anomaly_plan = &plan;
  killed_run.crash_plan = &crash;
  const RunResult killed = train_mnist(dataset, mcfg, killed_run);
  ASSERT_TRUE(killed.interrupted) << "injected kill did not fire";
  ASSERT_EQ(killed.guard_rollbacks, 1);
  // The rollback re-saved the blessed target with the updated ledger, so the
  // on-disk trajectory is the recovery's: step 8 blessed, step 10 unblessed.
  EXPECT_TRUE(ckpt::CheckpointManager::is_blessed(
      ckpt::CheckpointManager::step_path(dir.path, 8)));

  // Resuming restores the sentinel state (escalation ledger, fired-injection
  // set, episode) from the checkpoint extra section and completes the
  // recovery exactly as the uninterrupted run did — bitwise.
  RunConfig resumed_run = mnist_run(&schedule, dir.path);
  resumed_run.anomaly_plan = &plan;
  resumed_run.resume = true;
  const RunResult completed = train_mnist(dataset, mcfg, resumed_run);
  ASSERT_FALSE(completed.diverged);
  EXPECT_FALSE(completed.interrupted);
  EXPECT_EQ(completed.resumed_from_step, 10);
  // The fired-injection set survived: the step-10 anomaly does not re-fire.
  EXPECT_EQ(completed.guard_anomalies, 0);
  EXPECT_EQ(completed.guard_rollbacks, 0);
  expect_params_equal(ref, completed, "crash mid-recovery");
}

// ---- observe mode -----------------------------------------------------------

TEST(GuardRecovery, ObserveModeKeepsTrajectoryBitwise) {
  data::SyntheticMnist dataset(128, 32, 42);
  models::MnistLstmConfig mcfg;
  mcfg.transform_dim = 16;
  mcfg.hidden_dim = 16;
  sched::ConstantLr schedule(0.1f);
  RunConfig run;
  run.batch_size = 32;
  run.epochs = 3;
  run.optimizer = "momentum";
  run.schedule = &schedule;
  run.final_eval_only = true;
  run.capture_final_params = true;

  const core::GuardMode saved = core::guard_mode();
  core::set_guard_mode(core::GuardMode::kOff);
  const RunResult off = train_mnist(dataset, mcfg, run);
  core::set_guard_mode(core::GuardMode::kObserve);
  const RunResult observed = train_mnist(dataset, mcfg, run);
  core::set_guard_mode(saved);

  ASSERT_FALSE(off.diverged);
  ASSERT_FALSE(observed.diverged);
  // Observe mode watches signals but never intervenes: same bits out.
  expect_params_equal(off, observed, "observe mode");
  EXPECT_EQ(observed.guard_rollbacks, 0);
}

// ---- corrupt-skip telemetry events ------------------------------------------

TEST(GuardRecovery, CorruptCheckpointSkipEmitsTelemetryEvents) {
  TempDir dir("corrupt_events");
  ckpt::ManagerConfig cfg;
  cfg.dir = dir.path + "/ckpts";
  cfg.every_steps = 2;
  cfg.keep_last = 0;
  ckpt::CheckpointManager mgr(cfg);

  core::Rng rng(5);
  nn::Linear model(3, 2, rng);
  auto opt = optim::make_optimizer("momentum", model.parameters(), 0.0f);
  ckpt::TrainState s;
  s.models.push_back(&model);
  s.optimizers.push_back(opt.get());
  s.step = 2;
  ASSERT_TRUE(mgr.save_now(s).ok());
  s.step = 4;
  ASSERT_TRUE(mgr.save_now(s).ok());
  // Truncate the newest file: restore must skip it, fall back to step 2, and
  // leave a machine-readable trail in the event log.
  const std::string newest = ckpt::CheckpointManager::step_path(cfg.dir, 4);
  const auto full = std::filesystem::file_size(newest);
  std::filesystem::resize_file(newest, full / 2);

  obs::TraceRecorder::global().clear();
  ckpt::TrainState tgt;
  tgt.models.push_back(&model);
  tgt.optimizers.push_back(opt.get());
  const auto outcome = mgr.restore_latest(tgt);
  ASSERT_TRUE(outcome.restored);
  EXPECT_EQ(tgt.step, 2);

  const auto events = obs::TraceRecorder::global().events();
  bool saw_skip = false;
  bool saw_fallback = false;
  for (const auto& e : events) {
    if (e.kind == "ckpt_corrupt_skipped") {
      saw_skip = true;
      bool has_path = false;
      for (const auto& [k, v] : e.fields) {
        if (k == "path") {
          has_path = true;
          EXPECT_NE(v.find("000000000004"), std::string::npos);
        }
      }
      EXPECT_TRUE(has_path);
    }
    if (e.kind == "ckpt_fallback") saw_fallback = true;
  }
  EXPECT_TRUE(saw_skip) << "no ckpt_corrupt_skipped event recorded";
  EXPECT_TRUE(saw_fallback) << "no ckpt_fallback event recorded";
  obs::TraceRecorder::global().clear();
}

}  // namespace
}  // namespace legw::train
