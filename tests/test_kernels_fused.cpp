// Fused LSTM-cell kernel coverage: gradcheck through ag::gradcheck,
// fused-vs-composed equivalence including saturated-gate inputs, and direct
// scalar cross-checks of the core::lstm_cell_forward/backward kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ag/gradcheck.hpp"
#include "ag/ops.hpp"
#include "core/kernels.hpp"
#include "nn/lstm.hpp"

namespace legw::ag {
namespace {

using core::Rng;
using core::Tensor;

struct CellSetup {
  Variable x, h, c, w, b;
};

CellSetup make_cell(i64 batch, i64 in, i64 hidden, u64 seed, float x_scale) {
  Rng rng(seed);
  CellSetup s;
  s.x = Variable::leaf(Tensor::randn({batch, in}, rng, x_scale), true);
  s.h = Variable::leaf(Tensor::randn({batch, hidden}, rng, 0.5f), true);
  s.c = Variable::leaf(Tensor::randn({batch, hidden}, rng, 0.5f), true);
  s.w = Variable::leaf(Tensor::randn({in + hidden, 4 * hidden}, rng, 0.3f),
                       true);
  s.b = Variable::leaf(Tensor::randn({4 * hidden}, rng, 0.3f), true);
  return s;
}

Variable composed_cell(const CellSetup& s, i64 hidden) {
  Variable xh = concat_cols({s.x, s.h});
  Variable z = add_bias(matmul(xh, s.w), s.b);
  Variable gi = sigmoid(slice_cols(z, 0, hidden));
  Variable gf = sigmoid(slice_cols(z, hidden, 2 * hidden));
  Variable gg = tanh(slice_cols(z, 2 * hidden, 3 * hidden));
  Variable go = sigmoid(slice_cols(z, 3 * hidden, 4 * hidden));
  Variable c_new = add(mul(gf, s.c), mul(gi, gg));
  Variable h_new = mul(go, tanh(c_new));
  return concat_cols({h_new, c_new});
}

TEST(FusedLstmKernel, GradCheckNormalRegime) {
  const i64 B = 3, I = 4, H = 5;
  CellSetup s = make_cell(B, I, H, 1001, 0.5f);
  auto r = grad_check(
      [&] {
        Variable hc = lstm_cell(s.x, s.h, s.c, s.w, s.b);
        return sum_all(mul(hc, hc));
      },
      {s.x, s.h, s.c, s.w, s.b});
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(FusedLstmKernel, GradCheckSaturatedGates) {
  // |x| > 10 drives the sigmoid/tanh gates deep into saturation where the
  // analytic derivative is ~0; finite differences must agree there too (a
  // wrong saturation branch shows up as an O(1) mismatch).
  const i64 B = 2, I = 3, H = 3;
  CellSetup s = make_cell(B, I, H, 2002, 0.5f);
  for (i64 i = 0; i < s.x.numel(); ++i) {
    s.x.mutable_value()[i] = s.x.value()[i] >= 0.0f ? 12.0f : -12.0f;
  }
  auto r = grad_check(
      [&] {
        Variable hc = lstm_cell(s.x, s.h, s.c, s.w, s.b);
        return sum_all(mul(hc, hc));
      },
      {s.h, s.c, s.w, s.b});
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(FusedLstmKernel, FusedMatchesComposedSaturated) {
  // Forward and backward equivalence against the op-composed path on inputs
  // with |x| > 10 (saturated gates) mixed into a normal batch.
  const i64 B = 4, I = 5, H = 6;
  CellSetup s = make_cell(B, I, H, 3003, 0.5f);
  // Saturate half the batch.
  for (i64 r = 0; r < B / 2; ++r) {
    for (i64 j = 0; j < I; ++j) {
      float& v = s.x.mutable_value().at(r, j);
      v = v >= 0.0f ? 15.0f : -15.0f;
    }
  }
  Variable fused = lstm_cell(s.x, s.h, s.c, s.w, s.b);
  Variable ref = composed_cell(s, H);
  ASSERT_TRUE(fused.value().same_shape(ref.value()));
  for (i64 i = 0; i < fused.numel(); ++i) {
    EXPECT_NEAR(fused.value()[i], ref.value()[i], 1e-6f) << "elem " << i;
  }

  backward(sum_all(mul(fused, fused)));
  std::vector<Tensor> fused_grads = {s.x.grad(), s.h.grad(), s.c.grad(),
                                     s.w.grad(), s.b.grad()};
  for (Variable* v : {&s.x, &s.h, &s.c, &s.w, &s.b}) v->zero_grad();
  Variable ref2 = composed_cell(s, H);
  backward(sum_all(mul(ref2, ref2)));
  std::vector<Tensor> ref_grads = {s.x.grad(), s.h.grad(), s.c.grad(),
                                   s.w.grad(), s.b.grad()};
  for (std::size_t p = 0; p < fused_grads.size(); ++p) {
    for (i64 i = 0; i < fused_grads[p].numel(); ++i) {
      EXPECT_NEAR(fused_grads[p][i], ref_grads[p][i], 2e-4f)
          << "param " << p << " elem " << i;
    }
  }
}

TEST(FusedLstmKernel, ForwardKernelMatchesScalarReference) {
  // Direct check of core::lstm_cell_forward against a straightforward scalar
  // transcription of the cell equations.
  const i64 B = 5, H = 7;
  Rng rng(4004);
  std::vector<float> z(static_cast<std::size_t>(B * 4 * H));
  std::vector<float> bias(static_cast<std::size_t>(4 * H));
  std::vector<float> c_prev(static_cast<std::size_t>(B * H));
  for (auto& v : z) v = static_cast<float>(rng.uniform(-3.0, 3.0));
  for (auto& v : bias) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : c_prev) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  std::vector<float> acts = z;
  std::vector<float> out(static_cast<std::size_t>(B * 2 * H));
  std::vector<float> tanh_c(static_cast<std::size_t>(B * H));
  core::lstm_cell_forward(B, H, bias.data(), acts.data(), c_prev.data(),
                          out.data(), tanh_c.data());

  auto sigmoid = [](float v) { return 1.0f / (1.0f + std::exp(-v)); };
  for (i64 r = 0; r < B; ++r) {
    for (i64 j = 0; j < H; ++j) {
      const std::size_t zi = static_cast<std::size_t>(r * 4 * H + j);
      const float gi = sigmoid(z[zi] + bias[static_cast<std::size_t>(j)]);
      const float gf = sigmoid(z[zi + H] + bias[static_cast<std::size_t>(H + j)]);
      const float gg = std::tanh(z[zi + 2 * H] +
                                 bias[static_cast<std::size_t>(2 * H + j)]);
      const float go = sigmoid(z[zi + 3 * H] +
                               bias[static_cast<std::size_t>(3 * H + j)]);
      const float cn = gf * c_prev[static_cast<std::size_t>(r * H + j)] + gi * gg;
      EXPECT_NEAR(acts[zi], gi, 1e-6f);
      EXPECT_NEAR(acts[zi + H], gf, 1e-6f);
      EXPECT_NEAR(acts[zi + 2 * H], gg, 1e-6f);
      EXPECT_NEAR(acts[zi + 3 * H], go, 1e-6f);
      EXPECT_NEAR(out[static_cast<std::size_t>(r * 2 * H + j)],
                  go * std::tanh(cn), 1e-6f);
      EXPECT_NEAR(out[static_cast<std::size_t>(r * 2 * H + H + j)], cn, 1e-6f);
      EXPECT_NEAR(tanh_c[static_cast<std::size_t>(r * H + j)], std::tanh(cn),
                  1e-6f);
    }
  }
}

TEST(FusedLstmKernel, LayerEquivalenceSaturated) {
  // nn-level: a fused and a composed LstmCellLayer with identical parameters
  // must agree on saturated inputs.
  const i64 B = 4, I = 5, H = 6;
  Rng rng_a(55), rng_b(55);
  nn::LstmCellLayer fused(I, H, rng_a, 1.0f, /*use_fused=*/true);
  nn::LstmCellLayer composed(I, H, rng_b, 1.0f, /*use_fused=*/false);

  Rng xr(9);
  Tensor x = Tensor::randn({B, I}, xr);
  for (i64 i = 0; i < x.numel(); ++i) x[i] = x[i] >= 0.0f ? 11.0f : -11.0f;
  nn::LstmState sf = fused.step(Variable::constant(x), fused.zero_state(B));
  nn::LstmState sc =
      composed.step(Variable::constant(x), composed.zero_state(B));
  for (i64 i = 0; i < sf.h.numel(); ++i) {
    EXPECT_NEAR(sf.h.value()[i], sc.h.value()[i], 1e-6f);
    EXPECT_NEAR(sf.c.value()[i], sc.c.value()[i], 1e-6f);
  }
}

}  // namespace
}  // namespace legw::ag
