// Model-level tests: shapes, gradient flow, and one-model smoke training
// (loss decreases under plain SGD on a fixed batch).
#include <gtest/gtest.h>

#include "data/corpus.hpp"
#include "data/translation.hpp"
#include "models/gnmt.hpp"
#include "models/mnist_lstm.hpp"
#include "models/ptb_model.hpp"
#include "models/resnet.hpp"
#include "optim/optimizer.hpp"

namespace legw::models {
namespace {

using core::Rng;
using core::Tensor;

TEST(MnistLstm, ForwardShapeAndDeterminism) {
  MnistLstmConfig cfg;
  cfg.transform_dim = 16;
  cfg.hidden_dim = 16;
  MnistLstm m1(cfg), m2(cfg);
  Rng rng(1);
  Tensor images = Tensor::rand_uniform({3, 784}, rng);
  ag::Variable l1 = m1.forward(images);
  ag::Variable l2 = m2.forward(images);
  EXPECT_EQ(l1.size(0), 3);
  EXPECT_EQ(l1.size(1), 10);
  for (i64 i = 0; i < l1.numel(); ++i) ASSERT_EQ(l1.value()[i], l2.value()[i]);
}

TEST(MnistLstm, AllParametersReceiveGradient) {
  MnistLstmConfig cfg;
  cfg.transform_dim = 8;
  cfg.hidden_dim = 8;
  MnistLstm model(cfg);
  Rng rng(2);
  Tensor images = Tensor::rand_uniform({4, 784}, rng);
  ag::backward(model.loss(images, {0, 1, 2, 3}));
  for (const auto& p : model.named_parameters()) {
    EXPECT_GT(p.var.grad().l2_norm(), 0.0f) << p.name;
  }
}

TEST(MnistLstm, LossDecreasesOnFixedBatch) {
  MnistLstmConfig cfg;
  cfg.transform_dim = 16;
  cfg.hidden_dim = 16;
  MnistLstm model(cfg);
  Rng rng(3);
  Tensor images = Tensor::rand_uniform({8, 784}, rng);
  std::vector<i32> labels = {0, 1, 2, 3, 4, 5, 6, 7};
  auto opt = optim::make_optimizer("adam", model.parameters());
  opt->set_lr(0.01f);
  float first = 0.0f, last = 0.0f;
  for (int it = 0; it < 60; ++it) {
    model.zero_grad();
    ag::Variable loss = model.loss(images, labels);
    if (it == 0) first = loss.value()[0];
    last = loss.value()[0];
    ag::backward(loss);
    optim::clip_grad_norm(opt->params(), 5.0f);
    opt->step();
  }
  EXPECT_LT(last, 0.5f * first);
}

TEST(PtbModel, ChunkLossAndCarriedState) {
  data::CorpusConfig ccfg;
  ccfg.vocab = 50;
  ccfg.n_train_tokens = 2000;
  ccfg.n_valid_tokens = 500;
  data::SyntheticCorpus corpus(ccfg);
  PtbConfig cfg = PtbConfig::small(50);
  cfg.embed_dim = 16;
  cfg.hidden_dim = 16;
  cfg.bptt_len = 5;
  PtbModel model(cfg);

  data::BpttBatcher batcher(corpus.train_tokens(), 4, 5);
  auto chunk = batcher.next_chunk();
  Rng drng(1);
  auto carried = model.zero_carried(4);
  auto out = model.chunk_loss(chunk.inputs, chunk.targets, 4, 5, carried, drng);
  EXPECT_EQ(out.loss.numel(), 1);
  EXPECT_GT(out.loss.value()[0], 0.0f);
  // Initial loss should be near log(vocab) for a fresh model.
  EXPECT_NEAR(out.loss.value()[0], std::log(50.0f), 1.0f);
  EXPECT_EQ(out.carried.h.size(), 2u);
  EXPECT_GT(out.carried.h[0].l2_norm(), 0.0f);  // state actually moved
}

TEST(PtbModel, TrainingReducesPerplexity) {
  data::CorpusConfig ccfg;
  ccfg.vocab = 40;
  ccfg.n_train_tokens = 4000;
  ccfg.n_valid_tokens = 600;
  data::SyntheticCorpus corpus(ccfg);
  PtbConfig cfg = PtbConfig::small(40);
  cfg.embed_dim = 24;
  cfg.hidden_dim = 24;
  cfg.bptt_len = 8;
  PtbModel model(cfg);

  const double ppl_before = std::exp(model.evaluate_nll(corpus.valid_tokens(), 4, 8));
  auto opt = optim::make_optimizer("adam", model.parameters());
  opt->set_lr(0.02f);
  data::BpttBatcher batcher(corpus.train_tokens(), 8, 8);
  Rng drng(2);
  auto carried = model.zero_carried(8);
  for (int it = 0; it < 240; ++it) {
    auto chunk = batcher.next_chunk();
    if (chunk.first_in_epoch) carried = model.zero_carried(8);
    model.zero_grad();
    auto out = model.chunk_loss(chunk.inputs, chunk.targets, 8, 8, carried, drng);
    carried = std::move(out.carried);
    ag::backward(out.loss);
    optim::clip_grad_norm(opt->params(), 5.0f);
    opt->step();
  }
  const double ppl_after = std::exp(model.evaluate_nll(corpus.valid_tokens(), 4, 8));
  EXPECT_LT(ppl_after, 0.8 * ppl_before);
}

TEST(Gnmt, LossShapeAndPadInvariance) {
  data::TranslationConfig tcfg;
  tcfg.n_train = 20;
  tcfg.n_test = 5;
  data::SyntheticTranslation dataset(tcfg);
  GnmtConfig cfg;
  cfg.hidden_dim = 8;
  cfg.embed_dim = 8;
  cfg.num_layers = 2;
  Gnmt model(cfg);

  auto batch = data::make_translation_batch(dataset.train(), {0, 1, 2});
  Rng drng(1);
  ag::Variable loss = model.loss(batch, drng);
  EXPECT_EQ(loss.numel(), 1);
  EXPECT_GT(loss.value()[0], 0.0f);
  // Fresh-model loss ~ log(tgt_vocab).
  EXPECT_NEAR(loss.value()[0], std::log(200.0f), 1.5f);
}

TEST(Gnmt, AllParametersReceiveGradient) {
  data::TranslationConfig tcfg;
  tcfg.n_train = 10;
  data::SyntheticTranslation dataset(tcfg);
  GnmtConfig cfg;
  cfg.hidden_dim = 8;
  cfg.embed_dim = 8;
  cfg.num_layers = 4;  // full depth incl. residual layers
  Gnmt model(cfg);
  auto batch = data::make_translation_batch(dataset.train(), {0, 1});
  Rng drng(1);
  ag::backward(model.loss(batch, drng));
  for (const auto& p : model.named_parameters()) {
    EXPECT_GT(p.var.grad().l2_norm(), 0.0f) << p.name;
  }
}

TEST(Gnmt, GreedyDecodeProducesTokens) {
  data::TranslationConfig tcfg;
  tcfg.n_train = 10;
  tcfg.n_test = 4;
  data::SyntheticTranslation dataset(tcfg);
  GnmtConfig cfg;
  cfg.hidden_dim = 8;
  cfg.embed_dim = 8;
  cfg.num_layers = 2;
  Gnmt model(cfg);
  auto batch = data::make_translation_batch(dataset.test(), {0, 1, 2, 3});
  auto hyps = model.greedy_decode(batch, 12);
  EXPECT_EQ(hyps.size(), 4u);
  for (const auto& h : hyps) {
    EXPECT_LE(h.size(), 12u);
    for (i32 t : h) {
      EXPECT_GE(t, 0);
      EXPECT_LT(t, 200);
    }
  }
}

TEST(Gnmt, LossDecreasesOnFixedBatch) {
  data::TranslationConfig tcfg;
  tcfg.n_train = 8;
  data::SyntheticTranslation dataset(tcfg);
  GnmtConfig cfg;
  cfg.hidden_dim = 12;
  cfg.embed_dim = 12;
  cfg.num_layers = 2;
  Gnmt model(cfg);
  auto batch = data::make_translation_batch(dataset.train(),
                                            {0, 1, 2, 3, 4, 5, 6, 7});
  auto opt = optim::make_optimizer("adam", model.parameters());
  opt->set_lr(0.01f);
  Rng drng(3);
  float first = 0.0f, last = 0.0f;
  for (int it = 0; it < 25; ++it) {
    model.zero_grad();
    ag::Variable loss = model.loss(batch, drng);
    if (it == 0) first = loss.value()[0];
    last = loss.value()[0];
    ag::backward(loss);
    optim::clip_grad_norm(opt->params(), 5.0f);
    opt->step();
  }
  EXPECT_LT(last, 0.7f * first);
}

TEST(ResNet, ForwardShapeAndParamCount) {
  ResNetConfig cfg;
  cfg.width = 4;
  cfg.blocks_per_stage = 1;
  ResNet model(cfg);
  Rng rng(4);
  Tensor images = Tensor::rand_uniform({2, 3, 16, 16}, rng);
  ag::Variable logits = model.forward(images);
  EXPECT_EQ(logits.size(0), 2);
  EXPECT_EQ(logits.size(1), 10);
  EXPECT_GT(model.num_parameters(), 1000);
}

TEST(ResNet, AllParametersReceiveGradient) {
  ResNetConfig cfg;
  cfg.width = 4;
  ResNet model(cfg);
  Rng rng(5);
  Tensor images = Tensor::rand_uniform({4, 3, 16, 16}, rng);
  ag::backward(model.loss(images, {0, 1, 2, 3}));
  for (const auto& p : model.named_parameters()) {
    EXPECT_GT(p.var.grad().l2_norm(), 0.0f) << p.name;
  }
}

TEST(ResNet, LossDecreasesOnFixedBatch) {
  ResNetConfig cfg;
  cfg.width = 4;
  ResNet model(cfg);
  Rng rng(6);
  Tensor images = Tensor::rand_uniform({8, 3, 16, 16}, rng);
  std::vector<i32> labels = {0, 1, 2, 3, 4, 5, 6, 7};
  auto opt = optim::make_optimizer("momentum", model.parameters());
  opt->set_lr(0.05f);
  float first = 0.0f, last = 0.0f;
  for (int it = 0; it < 30; ++it) {
    model.zero_grad();
    ag::Variable loss = model.loss(images, labels);
    if (it == 0) first = loss.value()[0];
    last = loss.value()[0];
    ag::backward(loss);
    opt->step();
  }
  EXPECT_LT(last, 0.5f * first);
}

TEST(ResNet, EvalModeIsDeterministic) {
  ResNetConfig cfg;
  cfg.width = 4;
  ResNet model(cfg);
  Rng rng(7);
  Tensor images = Tensor::rand_uniform({2, 3, 16, 16}, rng);
  model.set_training(false);
  ag::Variable l1 = model.forward(images);
  ag::Variable l2 = model.forward(images);
  for (i64 i = 0; i < l1.numel(); ++i) ASSERT_EQ(l1.value()[i], l2.value()[i]);
}

}  // namespace
}  // namespace legw::models
