// Contract checks: the library aborts loudly (LEGW_CHECK) on misuse instead
// of corrupting state. These death tests pin down the error surface, plus
// direct unit tests of the low-level kernels backing the autograd ops.
#include <gtest/gtest.h>

#include <cmath>

#include "ag/ops.hpp"
#include "core/kernels.hpp"
#include "core/tensor.hpp"
#include "data/corpus.hpp"
#include "data/translation.hpp"
#include "dist/cluster_model.hpp"
#include "sched/legw.hpp"
#include "sched/schedule.hpp"

namespace legw {
namespace {

using core::Rng;
using core::Tensor;

// ---- kernel unit tests -------------------------------------------------------

TEST(Kernels, SigmoidMatchesStd) {
  const float x[4] = {-2.0f, -0.5f, 0.0f, 3.0f};
  float y[4];
  core::sigmoid_forward(x, y, 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(y[i], 1.0f / (1.0f + std::exp(-x[i])), 1e-6f);
  }
  // Backward: dy/dx = y(1-y), accumulating.
  float dx[4] = {1.0f, 1.0f, 1.0f, 1.0f};
  const float dy[4] = {1.0f, 1.0f, 1.0f, 1.0f};
  core::sigmoid_backward(y, dy, dx, 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(dx[i], 1.0f + y[i] * (1.0f - y[i]), 1e-6f);
  }
}

TEST(Kernels, TanhAndReluMatchStd) {
  const float x[3] = {-1.5f, 0.25f, 2.0f};
  float y[3];
  core::tanh_forward(x, y, 3);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(y[i], std::tanh(x[i]), 1e-6f);
  core::relu_forward(x, y, 3);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 0.25f);
  EXPECT_EQ(y[2], 2.0f);
}

TEST(Kernels, LogSoftmaxIsLogOfSoftmax) {
  Rng rng(1);
  Tensor x = Tensor::randn({4, 7}, rng, 2.0f);
  Tensor sm({4, 7}), lsm({4, 7});
  core::softmax_rows(x.data(), sm.data(), 4, 7);
  core::log_softmax_rows(x.data(), lsm.data(), 4, 7);
  for (i64 i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(lsm[i], std::log(sm[i]), 1e-4f);
  }
}

TEST(Kernels, CrossEntropyCountsAndIgnores) {
  Tensor logits({3, 2}, {0.0f, 0.0f, 5.0f, -5.0f, 0.0f, 0.0f});
  const i32 targets[3] = {0, -1, 1};
  i64 counted = 0;
  const double loss = core::softmax_cross_entropy_forward(
      logits.data(), targets, 3, 2, -1, nullptr, &counted);
  EXPECT_EQ(counted, 2);
  // Row 0: -log(0.5); row 2: -log(0.5).
  EXPECT_NEAR(loss, 2.0 * std::log(2.0), 1e-5);
}

// ---- contract death tests ------------------------------------------------------

TEST(Contracts, TensorShapeMismatchAborts) {
  Tensor a({2, 2});
  Tensor b({4});
  EXPECT_DEATH(a.add_(b), "shape mismatch");
  EXPECT_DEATH((void)(a + b), "shape mismatch");
}

TEST(Contracts, ReshapeMustPreserveNumel) {
  Tensor a({2, 3});
  EXPECT_DEATH((void)a.reshape({4, 2}), "changes element count");
}

TEST(Contracts, MatmulInnerDimensionsMustAgree) {
  Rng rng(2);
  Tensor a = Tensor::randn({2, 3}, rng);
  Tensor b = Tensor::randn({4, 5}, rng);
  EXPECT_DEATH((void)core::matmul(a, b), "inner dimensions differ");
}

TEST(Contracts, BackwardNeedsScalarRoot) {
  ag::Variable v = ag::Variable::leaf(Tensor({2}, {1.0f, 2.0f}), true);
  ag::Variable y = ag::mul(v, v);
  EXPECT_DEATH(ag::backward(y), "scalar root");
}

TEST(Contracts, EmbeddingIndexOutOfRangeAborts) {
  ag::Variable w = ag::Variable::leaf(Tensor::zeros({3, 2}), true);
  EXPECT_DEATH((void)ag::embedding(w, {5}), "index out of range");
}

TEST(Contracts, SliceColsValidatesRange) {
  ag::Variable v = ag::Variable::leaf(Tensor::zeros({2, 4}), true);
  EXPECT_DEATH((void)ag::slice_cols(v, 2, 6), "bad column range");
  EXPECT_DEATH((void)ag::slice_cols(v, 3, 3), "bad column range");
}

TEST(Contracts, LstmCellValidatesShapes) {
  Rng rng(3);
  ag::Variable x = ag::Variable::constant(Tensor::randn({2, 3}, rng));
  ag::Variable h = ag::Variable::constant(Tensor::randn({2, 4}, rng));
  ag::Variable c = ag::Variable::constant(Tensor::randn({2, 4}, rng));
  ag::Variable w_bad = ag::Variable::constant(Tensor::randn({5, 16}, rng));
  ag::Variable b = ag::Variable::constant(Tensor::zeros({16}));
  EXPECT_DEATH((void)ag::lstm_cell(x, h, c, w_bad, b),
               "w must be \\[in\\+hidden, 4\\*hidden\\]");
}

TEST(Contracts, LegwValidatesBatchSizes) {
  sched::LegwBaseline base{0, 0.1f, 1.0};
  EXPECT_DEATH((void)sched::legw_scale(base, 64), "baseline batch size");
  sched::LegwBaseline ok{32, 0.1f, 1.0};
  EXPECT_DEATH((void)sched::legw_scale(ok, 0), "target batch size");
}

TEST(Contracts, MultiStepMilestonesMustBeSorted) {
  EXPECT_DEATH(sched::MultiStepLr(1.0f, {30.0, 10.0}, 0.1f),
               "sorted ascending");
}

TEST(Contracts, BpttBatcherNeedsEnoughTokens) {
  std::vector<i32> tiny(10, 1);
  EXPECT_DEATH(data::BpttBatcher(tiny, 8, 20), "not enough tokens");
}

TEST(Contracts, TranslationVocabMustFitReservedIds) {
  data::TranslationConfig cfg;
  cfg.src_vocab = 4;  // smaller than kFirstTokenId + 2
  EXPECT_DEATH(data::SyntheticTranslation{cfg}, "vocab too small");
}

TEST(Contracts, ClusterModelValidatesSizes) {
  dist::ClusterConfig cfg;
  EXPECT_DEATH((void)dist::cluster_epoch_time(cfg, 0, 32), "bad sizes");
  EXPECT_DEATH((void)dist::cluster_epoch_time(cfg, 100, 0), "bad sizes");
}

TEST(Contracts, DeviceModelFitDegenerateInputIsGraceful) {
  // Degenerate sample sets used to abort; they now fall back without
  // dividing by zero (full behaviour in tests/test_dist_properties.cpp).
  const dist::DeviceModel one = dist::fit_device_model({{32, 0.1}});
  EXPECT_NEAR(one.peak_samples_per_sec, 320.0, 1e-9);
  EXPECT_EQ(one.half_saturation_batch, 0.0);
  const dist::DeviceModel none = dist::fit_device_model({});
  EXPECT_EQ(none.peak_samples_per_sec, dist::DeviceModel{}.peak_samples_per_sec);
}

TEST(Contracts, GradualWarmupRejectsNegativeAndNull) {
  EXPECT_DEATH(sched::GradualWarmup(-1.0, std::make_shared<sched::ConstantLr>(1.0f)),
               "negative warmup");
  EXPECT_DEATH(sched::GradualWarmup(1.0, nullptr), "null inner");
}

}  // namespace
}  // namespace legw
