// Elastic-membership battery (dist/membership): the step-indexed state
// machine (join/leave/die, shard ownership under the three policies, seeded
// plan determinism, fast_forward replay), then the end-to-end fault matrix —
// membership events x all-reduce algorithm x policy through train_mnist,
// composed with checkpoint crash+resume, which must stay bit-identical.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "core/flags.hpp"
#include "data/synthetic_mnist.hpp"
#include "dist/membership.hpp"
#include "models/mnist_lstm.hpp"
#include "sched/schedule.hpp"
#include "train/recorder.hpp"
#include "train/runners.hpp"

namespace legw::dist {
namespace {

MembershipPlan leave_join_die_plan() {
  // r2 leaves at step 2 and rejoins at step 5; r3 dies at step 8.
  MembershipPlan plan;
  plan.events.push_back({2, 2, MembershipEvent::Kind::kLeave});
  plan.events.push_back({5, 2, MembershipEvent::Kind::kJoin});
  plan.events.push_back({8, 3, MembershipEvent::Kind::kDie});
  return plan;
}

// ---- state machine ----------------------------------------------------------

TEST(MembershipPlanTest, SeededIsDeterministicAndConsistent) {
  const MembershipPlan a = MembershipPlan::seeded(99, 40, 6, 10);
  const MembershipPlan b = MembershipPlan::seeded(99, 40, 6, 10);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_FALSE(a.events.empty());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].step, b.events[i].step);
    EXPECT_EQ(a.events[i].replica, b.events[i].replica);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    // Replica 0 anchors checkpointing and never appears in a plan.
    EXPECT_GE(a.events[i].replica, 1);
  }
  a.validate(6);  // aborts on an inconsistent plan
  const MembershipPlan c = MembershipPlan::seeded(100, 40, 6, 10);
  bool differs = c.events.size() != a.events.size();
  for (std::size_t i = 0; !differs && i < a.events.size(); ++i) {
    differs = c.events[i].step != a.events[i].step ||
              c.events[i].replica != a.events[i].replica;
  }
  EXPECT_TRUE(differs) << "different seeds produced the identical plan";
}

TEST(MembershipManagerTest, TransitionsFollowThePlan) {
  const MembershipPlan plan = leave_join_die_plan();
  MembershipManager mgr(4, MembershipPolicy::kReassign, &plan);
  EXPECT_EQ(mgr.active(), (std::vector<int>{0, 1, 2, 3}));

  auto tr = mgr.begin_step(0);
  EXPECT_TRUE(tr.joined.empty() && tr.left.empty() && tr.died.empty());

  tr = mgr.begin_step(2);
  ASSERT_EQ(tr.left, (std::vector<int>{2}));
  EXPECT_EQ(mgr.active(), (std::vector<int>{0, 1, 3}));
  EXPECT_EQ(mgr.state(2), ReplicaState::kStandby);
  // A graceful leave is effective immediately: not a participant.
  EXPECT_EQ(mgr.participants(), (std::vector<int>{0, 1, 3}));

  tr = mgr.begin_step(5);
  ASSERT_EQ(tr.joined, (std::vector<int>{2}));
  EXPECT_EQ(mgr.active(), (std::vector<int>{0, 1, 2, 3}));

  tr = mgr.begin_step(8);
  ASSERT_EQ(tr.died, (std::vector<int>{3}));
  EXPECT_EQ(mgr.state(3), ReplicaState::kDead);
  // Dying replicas stay in the participant set for the death step — the
  // engine must *detect* the death — but leave the active set.
  EXPECT_EQ(mgr.participants(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(mgr.active(), (std::vector<int>{0, 1, 2}));

  tr = mgr.begin_step(9);
  EXPECT_TRUE(tr.died.empty());
  EXPECT_EQ(mgr.participants(), (std::vector<int>{0, 1, 2}));
}

TEST(MembershipManagerTest, ShardOwnershipPerPolicy) {
  const MembershipPlan plan = leave_join_die_plan();
  for (MembershipPolicy policy :
       {MembershipPolicy::kFailFast, MembershipPolicy::kDegrade,
        MembershipPolicy::kReassign}) {
    MembershipManager mgr(4, policy, &plan);
    mgr.begin_step(2);  // r2 standby
    EXPECT_EQ(mgr.shard_owner(0), 0);
    EXPECT_EQ(mgr.shard_owner(1), 1);
    EXPECT_EQ(mgr.shard_owner(3), 3);
    if (policy == MembershipPolicy::kReassign) {
      // The first orphan goes to the first active replica.
      EXPECT_EQ(mgr.shard_owner(2), 0);
      const auto assignment = mgr.shard_assignment();
      ASSERT_EQ(assignment.size(), 3u);  // participants 0,1,3
      EXPECT_EQ(assignment[0], (std::vector<int>{0, 2}));
      EXPECT_EQ(assignment[1], (std::vector<int>{1}));
      EXPECT_EQ(assignment[2], (std::vector<int>{3}));
    } else {
      // Degrade / fail-fast: the orphaned shard is dropped.
      EXPECT_EQ(mgr.shard_owner(2), -1);
    }
  }
}

TEST(MembershipManagerTest, DyingReplicaKeepsItsShardForTheDeathStep) {
  const MembershipPlan plan = leave_join_die_plan();
  MembershipManager mgr(4, MembershipPolicy::kReassign, &plan);
  mgr.begin_step(5);
  mgr.begin_step(8);  // r3 dies this step
  EXPECT_EQ(mgr.shard_owner(3), 3);  // the engine degrades around it
  mgr.begin_step(9);  // from the next step the orphan is reassigned
  EXPECT_EQ(mgr.shard_owner(3), 0);
  const auto assignment = mgr.shard_assignment();
  ASSERT_EQ(assignment.size(), 3u);
  EXPECT_EQ(assignment[0], (std::vector<int>{0, 3}));
}

TEST(MembershipManagerTest, FastForwardMatchesStepByStepReplay) {
  const MembershipPlan plan = MembershipPlan::seeded(1234, 30, 5, 8);
  for (i64 resume = 1; resume < 30; resume += 7) {
    MembershipManager slow(5, MembershipPolicy::kReassign, &plan);
    for (i64 s = 0; s < resume; ++s) slow.begin_step(s);
    MembershipManager fast(5, MembershipPolicy::kReassign, &plan);
    fast.fast_forward(resume);
    for (i64 s = resume; s < 30; ++s) {
      slow.begin_step(s);
      fast.begin_step(s);
      ASSERT_EQ(fast.active(), slow.active()) << "resume " << resume
                                              << " step " << s;
      ASSERT_EQ(fast.participants(), slow.participants());
    }
  }
}

// ---- end-to-end fault matrix ------------------------------------------------

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& name)
      : path("/tmp/legw_membership_" + name) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

train::RunConfig base_run(const sched::LrSchedule* lr,
                          const MembershipPlan* plan,
                          MembershipPolicy policy) {
  train::RunConfig run;
  run.batch_size = 16;
  run.epochs = 3;  // 4 steps/epoch on the 64-sample set = 12 steps
  run.replicas = 4;
  run.schedule = lr;
  run.final_eval_only = true;
  run.capture_final_params = true;
  run.membership = plan;
  run.membership_policy = policy;
  run.membership_timeout_ms = 300.0;  // generous: a live replica must never
                                      // be mistaken for the dead one
  return run;
}

struct MatrixCase {
  core::DistAlgo algo;
  MembershipPolicy policy;
};

class MembershipMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(MembershipMatrix, RunSurvivesLeaveJoinAndDeath) {
  const MatrixCase c = GetParam();
  const core::DistAlgo saved = core::dist_algo();
  core::set_dist_algo(c.algo);
  data::SyntheticMnist dataset(64, 16, 7);
  models::MnistLstmConfig mc;
  mc.transform_dim = 8;
  mc.hidden_dim = 8;
  sched::ConstantLr lr(0.05f);
  const MembershipPlan plan = leave_join_die_plan();
  const train::RunConfig run = base_run(&lr, &plan, c.policy);
  const train::RunResult result = train::train_mnist(dataset, mc, run);
  core::set_dist_algo(saved);

  ASSERT_FALSE(result.diverged);
  EXPECT_FALSE(result.interrupted);
  EXPECT_EQ(result.steps, 12);
  ASSERT_FALSE(result.final_params.empty());
  for (const core::Tensor& p : result.final_params) {
    for (i64 i = 0; i < p.numel(); ++i) {
      ASSERT_TRUE(std::isfinite(p[i]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgoXPolicy, MembershipMatrix,
    ::testing::Values(
        MatrixCase{core::DistAlgo::kTree, MembershipPolicy::kDegrade},
        MatrixCase{core::DistAlgo::kTree, MembershipPolicy::kReassign},
        MatrixCase{core::DistAlgo::kRing, MembershipPolicy::kDegrade},
        MatrixCase{core::DistAlgo::kRing, MembershipPolicy::kReassign},
        MatrixCase{core::DistAlgo::kHier, MembershipPolicy::kReassign},
        MatrixCase{core::DistAlgo::kAuto, MembershipPolicy::kReassign}),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      return std::string(core::dist_algo_name(info.param.algo)) + "_" +
             (info.param.policy == MembershipPolicy::kDegrade ? "degrade"
                                                              : "reassign");
    });

TEST(MembershipFailFast, DeathStopsTheRunCleanly) {
  data::SyntheticMnist dataset(64, 16, 7);
  models::MnistLstmConfig mc;
  mc.transform_dim = 8;
  mc.hidden_dim = 8;
  sched::ConstantLr lr(0.05f);
  const MembershipPlan plan = leave_join_die_plan();
  const train::RunConfig run =
      base_run(&lr, &plan, MembershipPolicy::kFailFast);
  const train::RunResult result = train::train_mnist(dataset, mc, run);
  EXPECT_TRUE(result.interrupted) << "fail-fast death did not stop the run";
  EXPECT_FALSE(result.diverged);
  // The death is planned for step 8: leaves and joins before it are fine.
  EXPECT_EQ(result.steps, 8);
}

TEST(MembershipResume, CrashAndResumeIsBitIdenticalUnderElasticity) {
  // The membership promise that makes elasticity auditable: a crash+resume
  // replays the remaining membership history (fast_forward) and reproduces
  // the uninterrupted run's parameters bit for bit.
  TempDir dir("resume");
  data::SyntheticMnist dataset(64, 16, 7);
  models::MnistLstmConfig mc;
  mc.transform_dim = 8;
  mc.hidden_dim = 8;
  sched::ConstantLr lr(0.05f);
  const MembershipPlan plan = leave_join_die_plan();

  const train::RunConfig straight =
      base_run(&lr, &plan, MembershipPolicy::kReassign);
  const train::RunResult ref = train::train_mnist(dataset, mc, straight);
  ASSERT_FALSE(ref.diverged);

  // Same run, killed mid-step at step 6 (between the rejoin and the death),
  // checkpointing every 2 steps. A mid-step kill fires before that step's
  // checkpoint write, so the resume point is step 4 — before the rejoin,
  // which the resumed run must replay (including the hand-off).
  const ckpt::CrashPlan crash = ckpt::CrashPlan::mid_step(6);
  train::RunConfig killed = straight;
  killed.checkpoint_dir = dir.path;
  killed.checkpoint_every_steps = 2;
  killed.crash_plan = &crash;
  const train::RunResult dead = train::train_mnist(dataset, mc, killed);
  ASSERT_TRUE(dead.interrupted);

  train::RunConfig resumed = straight;
  resumed.checkpoint_dir = dir.path;
  resumed.checkpoint_every_steps = 2;
  resumed.resume = true;
  const train::RunResult completed = train::train_mnist(dataset, mc, resumed);
  ASSERT_FALSE(completed.diverged);
  EXPECT_EQ(completed.resumed_from_step, 4);

  ASSERT_EQ(completed.final_params.size(), ref.final_params.size());
  for (std::size_t p = 0; p < ref.final_params.size(); ++p) {
    const core::Tensor& a = ref.final_params[p];
    const core::Tensor& b = completed.final_params[p];
    ASSERT_EQ(a.numel(), b.numel());
    for (i64 i = 0; i < a.numel(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "param " << p << " elem " << i;
    }
  }
}

}  // namespace
}  // namespace legw::dist
