// Metric implementations: perplexity and corpus BLEU.
#include <gtest/gtest.h>

#include <cmath>

#include "train/metrics.hpp"

namespace legw::train {
namespace {

TEST(Perplexity, ExpOfNll) {
  EXPECT_NEAR(perplexity(0.0), 1.0, 1e-9);
  EXPECT_NEAR(perplexity(std::log(116.0)), 116.0, 1e-6);
}

TEST(Perplexity, ClampedOnDivergence) {
  EXPECT_LT(perplexity(1e9), 1.2e13);  // exp(30) cap
}

TEST(CorpusBleu, PerfectMatchIs100) {
  std::vector<std::vector<i32>> hyp = {{1, 2, 3, 4, 5}, {7, 8, 9, 10}};
  EXPECT_NEAR(corpus_bleu(hyp, hyp), 100.0, 1e-6);
}

TEST(CorpusBleu, CompletelyWrongIsLow) {
  std::vector<std::vector<i32>> hyp = {{1, 2, 3, 4, 5, 6}};
  std::vector<std::vector<i32>> ref = {{10, 11, 12, 13, 14, 15}};
  EXPECT_LT(corpus_bleu(hyp, ref), 10.0);
}

TEST(CorpusBleu, EmptyHypothesisIsZero) {
  std::vector<std::vector<i32>> hyp = {{}};
  std::vector<std::vector<i32>> ref = {{1, 2, 3}};
  EXPECT_EQ(corpus_bleu(hyp, ref), 0.0);
}

TEST(CorpusBleu, BrevityPenaltyAppliesToShortOutput) {
  // Hypothesis is a correct prefix of half the reference length: n-gram
  // precision is perfect, so BLEU == BP == exp(1 - r/h).
  std::vector<std::vector<i32>> hyp = {{1, 2, 3, 4, 5}};
  std::vector<std::vector<i32>> ref = {{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}};
  const double expected_bp = std::exp(1.0 - 10.0 / 5.0);
  EXPECT_NEAR(corpus_bleu(hyp, ref, 4, false), 100.0 * expected_bp, 1e-4);
}

TEST(CorpusBleu, NoLengthPenaltyForLongOutput) {
  // Longer-than-reference output is penalised through precision, not BP.
  std::vector<std::vector<i32>> hyp = {{1, 2, 3, 4, 99, 98}};
  std::vector<std::vector<i32>> ref = {{1, 2, 3, 4}};
  const double b = corpus_bleu(hyp, ref);
  EXPECT_GT(b, 0.0);
  EXPECT_LT(b, 100.0);
}

TEST(CorpusBleu, ClippingPreventsRepeatGaming) {
  // Repeating a correct token must not inflate precision: counts are clipped
  // at the reference count.
  std::vector<std::vector<i32>> spam = {{1, 1, 1, 1, 1, 1}};
  std::vector<std::vector<i32>> honest = {{1, 9, 9, 9, 9, 9}};
  std::vector<std::vector<i32>> ref = {{1, 2, 3, 4, 5, 6}};
  // Both get exactly one clipped unigram match; the spam must not win.
  EXPECT_LE(corpus_bleu(spam, ref), corpus_bleu(honest, ref) + 1e-9);
}

TEST(CorpusBleu, OrderMatters) {
  std::vector<std::vector<i32>> inorder = {{1, 2, 3, 4, 5, 6}};
  std::vector<std::vector<i32>> shuffled = {{4, 2, 6, 1, 5, 3}};
  std::vector<std::vector<i32>> ref = {{1, 2, 3, 4, 5, 6}};
  EXPECT_GT(corpus_bleu(inorder, ref), corpus_bleu(shuffled, ref));
}

TEST(CorpusBleu, MonotoneInQuality) {
  std::vector<std::vector<i32>> ref = {{1, 2, 3, 4, 5, 6, 7, 8}};
  std::vector<std::vector<i32>> half_right = {{1, 2, 3, 4, 90, 91, 92, 93}};
  std::vector<std::vector<i32>> mostly_right = {{1, 2, 3, 4, 5, 6, 90, 91}};
  const double b_half = corpus_bleu(half_right, ref);
  const double b_most = corpus_bleu(mostly_right, ref);
  EXPECT_GT(b_most, b_half);
  EXPECT_LT(b_most, 100.0);
}

TEST(CorpusBleu, CorpusLevelAggregation) {
  // One perfect and one empty hypothesis: corpus BLEU sits strictly between
  // the two sentence scores.
  std::vector<std::vector<i32>> hyp = {{1, 2, 3, 4, 5}, {}};
  std::vector<std::vector<i32>> ref = {{1, 2, 3, 4, 5}, {6, 7, 8, 9, 10}};
  const double b = corpus_bleu(hyp, ref);
  EXPECT_GT(b, 0.0);
  EXPECT_LT(b, 100.0);
}

}  // namespace
}  // namespace legw::train
