// Optimizer unit tests: hand-computed single steps for every solver, plus a
// parameterized convergence sweep on a quadratic bowl.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "ag/ops.hpp"
#include "optim/optimizer.hpp"

namespace legw::optim {
namespace {

using ag::Variable;
using core::Tensor;

// One scalar parameter with a preset gradient.
Variable param_with_grad(float w, float g) {
  Variable p = Variable::leaf(Tensor({1}, {w}), true);
  p.mutable_grad()[0] = g;
  return p;
}

TEST(Sgd, SingleStep) {
  Variable p = param_with_grad(1.0f, 0.5f);
  Sgd opt({p});
  opt.set_lr(0.1f);
  opt.step();
  EXPECT_NEAR(p.value()[0], 1.0f - 0.1f * 0.5f, 1e-6f);
}

TEST(Sgd, WeightDecayAddsL2Term) {
  Variable p = param_with_grad(2.0f, 0.0f);
  Sgd opt({p}, /*weight_decay=*/0.1f);
  opt.set_lr(1.0f);
  opt.step();
  // g_eff = 0 + 0.1*2 = 0.2 -> w = 2 - 0.2
  EXPECT_NEAR(p.value()[0], 1.8f, 1e-6f);
}

TEST(Momentum, VelocityAccumulates) {
  Variable p = param_with_grad(0.0f, 1.0f);
  Momentum opt({p}, 0.9f);
  opt.set_lr(0.1f);
  opt.step();  // v=1, w=-0.1
  EXPECT_NEAR(p.value()[0], -0.1f, 1e-6f);
  p.mutable_grad()[0] = 1.0f;  // same gradient again
  opt.step();  // v=1.9, w=-0.1-0.19
  EXPECT_NEAR(p.value()[0], -0.29f, 1e-6f);
}

TEST(Nesterov, LookaheadStep) {
  Variable p = param_with_grad(0.0f, 1.0f);
  Nesterov opt({p}, 0.9f);
  opt.set_lr(0.1f);
  opt.step();  // v=1, update = g + m*v = 1.9 -> w = -0.19
  EXPECT_NEAR(p.value()[0], -0.19f, 1e-6f);
}

TEST(Adagrad, AccumulatorShrinksSteps) {
  Variable p = param_with_grad(0.0f, 2.0f);
  Adagrad opt({p});
  opt.set_lr(1.0f);
  opt.step();  // acc=4, step = 2/sqrt(4) = 1
  EXPECT_NEAR(p.value()[0], -1.0f, 1e-4f);
  p.mutable_grad()[0] = 2.0f;
  opt.step();  // acc=8, step = 2/sqrt(8)
  EXPECT_NEAR(p.value()[0], -1.0f - 2.0f / std::sqrt(8.0f), 1e-4f);
}

TEST(RmsProp, ExponentialAverage) {
  Variable p = param_with_grad(0.0f, 1.0f);
  RmsProp opt({p}, 0.9f, 1e-8f);
  opt.set_lr(0.1f);
  opt.step();  // E=0.1, step = 0.1 * 1/sqrt(0.1)
  EXPECT_NEAR(p.value()[0], -0.1f / std::sqrt(0.1f + 1e-8f), 1e-5f);
}

TEST(Adam, BiasCorrectedFirstStep) {
  Variable p = param_with_grad(0.0f, 0.3f);
  Adam opt({p});
  opt.set_lr(0.01f);
  opt.step();
  // First Adam step with any nonzero gradient is ~ -lr * sign(g).
  EXPECT_NEAR(p.value()[0], -0.01f, 1e-4f);
}

TEST(Adam, StepsShrinkWithOscillatingGradients) {
  Variable p = param_with_grad(0.0f, 1.0f);
  Adam opt({p});
  opt.set_lr(0.1f);
  opt.step();
  const float first_move = std::abs(p.value()[0]);
  // Oscillating gradients -> first moment shrinks -> smaller steps.
  float prev = p.value()[0];
  p.mutable_grad()[0] = -1.0f;
  opt.step();
  const float second_move = std::abs(p.value()[0] - prev);
  EXPECT_LT(second_move, first_move);
}

TEST(Adadelta, RunsWithoutLrTuning) {
  Variable p = param_with_grad(1.0f, 1.0f);
  Adadelta opt({p});
  const float before = p.value()[0];
  opt.step();
  EXPECT_LT(p.value()[0], before);  // moved downhill
  EXPECT_NEAR(p.value()[0], before, 0.1f);  // but conservatively
}

TEST(Lars, TrustRatioScalesUpdate) {
  // ||w|| = 2, ||g|| = 1, wd = 0 -> local_lr = eta * 2.
  Variable p = Variable::leaf(Tensor({2}, {2.0f, 0.0f}), true);
  p.mutable_grad()[0] = 0.0f;
  p.mutable_grad()[1] = 1.0f;
  Lars opt({p}, /*eta=*/0.01f, /*momentum=*/0.0f, /*weight_decay=*/0.0f);
  opt.set_lr(1.0f);
  opt.step();
  // update = lr * local_lr * g = 1 * 0.02 * 1 on the second coord.
  EXPECT_NEAR(p.value()[1], -0.02f, 1e-5f);
  EXPECT_NEAR(p.value()[0], 2.0f, 1e-6f);
}

TEST(Lars, ZeroNormParameterFallsBack) {
  Variable p = param_with_grad(0.0f, 1.0f);  // ||w|| = 0
  Lars opt({p}, 0.001f, 0.0f, 0.0f);
  opt.set_lr(0.5f);
  opt.step();
  // local_lr falls back to 1 -> plain SGD step.
  EXPECT_NEAR(p.value()[0], -0.5f, 1e-6f);
}

TEST(ClipGradNorm, RescalesOnlyAboveThreshold) {
  Variable p = Variable::leaf(Tensor({2}, {0.0f, 0.0f}), true);
  p.mutable_grad()[0] = 3.0f;
  p.mutable_grad()[1] = 4.0f;  // norm 5
  const float norm = clip_grad_norm({p}, 2.5f);
  EXPECT_NEAR(norm, 5.0f, 1e-5f);
  EXPECT_NEAR(p.grad().l2_norm(), 2.5f, 1e-5f);
  // Below threshold: untouched.
  const float norm2 = clip_grad_norm({p}, 100.0f);
  EXPECT_NEAR(norm2, 2.5f, 1e-5f);
  EXPECT_NEAR(p.grad().l2_norm(), 2.5f, 1e-5f);
}

TEST(Factory, KnownNames) {
  Variable p = param_with_grad(1.0f, 0.0f);
  for (const char* name : {"sgd", "momentum", "nesterov", "adagrad", "rmsprop",
                           "adam", "adadelta", "lars"}) {
    auto opt = make_optimizer(name, {p});
    ASSERT_NE(opt, nullptr);
    EXPECT_EQ(opt->name(), name);
  }
}

// ---- convergence sweep: every solver minimises a quadratic bowl -------------

class OptimizerConvergenceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(OptimizerConvergenceTest, MinimisesQuadraticBowl) {
  // f(w) = 0.5 * sum(a_i * w_i^2) with condition number 10.
  core::Rng rng(77);
  Variable w = Variable::leaf(Tensor::randn({4}, rng, 1.0f), true);
  Variable a = Variable::constant(Tensor({4}, {1.0f, 2.0f, 5.0f, 10.0f}));
  auto opt = make_optimizer(GetParam(), {w});
  // Per-solver LR in a reasonable regime.
  const std::string name = GetParam();
  float lr = 0.05f;
  if (name == "adam" || name == "rmsprop") lr = 0.05f;
  if (name == "adagrad") lr = 0.5f;
  if (name == "adadelta") lr = 1.0f;  // Adadelta is designed to run at lr=1
  if (name == "lars") lr = 50.0f;      // trust ratio makes the step tiny
  opt->set_lr(lr);

  // Adadelta's accumulator warms up slowly: give it a longer horizon.
  const int n_iters = name == "adadelta" ? 6000 : 300;
  float initial = 0.0f, final_loss = 0.0f;
  for (int iter = 0; iter < n_iters; ++iter) {
    opt->zero_grad();
    Variable loss = ag::scale(ag::sum_all(ag::mul(a, ag::mul(w, w))), 0.5f);
    if (iter == 0) initial = loss.value()[0];
    final_loss = loss.value()[0];
    ag::backward(loss);
    opt->step();
  }
  EXPECT_LT(final_loss, 0.05f * initial)
      << GetParam() << " failed to reduce loss by 20x: " << initial << " -> "
      << final_loss;
}

INSTANTIATE_TEST_SUITE_P(AllSolvers, OptimizerConvergenceTest,
                         ::testing::Values("sgd", "momentum", "nesterov",
                                           "adagrad", "rmsprop", "adam",
                                           "adadelta", "lars"));

}  // namespace
}  // namespace legw::optim
