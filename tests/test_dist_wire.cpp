// Quantized gradient wire battery (dist/compression): fp16 and int8 edge
// values — subnormals, +-inf, the NaN tripwire interplay — the error-feedback
// residual staying bounded (and compensating) over 100 steps, replica
// bit-synchrony under a lossy wire, and convergence parity of quantized
// training against the fp32 wire.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "core/flags.hpp"
#include "core/rng.hpp"
#include "core/tensor.hpp"
#include "data/synthetic_mnist.hpp"
#include "dist/compression.hpp"
#include "dist/data_parallel.hpp"
#include "models/mnist_lstm.hpp"
#include "obs/trace.hpp"
#include "optim/optimizer.hpp"

namespace legw::dist {
namespace {

using core::Rng;
using core::Tensor;

constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kNan = std::numeric_limits<float>::quiet_NaN();

// ---- fp16 edges -------------------------------------------------------------

TEST(Fp16Wire, SubnormalsInfinitiesAndNans) {
  // Smallest positive subnormal half is 2^-24; halves of it round to zero,
  // and float subnormals far below the half range flush to signed zero.
  EXPECT_EQ(half_to_float(float_to_half(0x1.0p-24f)), 0x1.0p-24f);
  EXPECT_EQ(half_to_float(float_to_half(0x1.0p-26f)), 0.0f);
  EXPECT_EQ(half_to_float(float_to_half(-0x1.0p-26f)), -0.0f);
  EXPECT_TRUE(std::signbit(half_to_float(float_to_half(-0x1.0p-26f))));
  // Largest finite half is 65504; anything above the rounding cutoff
  // overflows to inf — "gradient exploded" survives the wire.
  EXPECT_EQ(half_to_float(float_to_half(65504.0f)), 65504.0f);
  EXPECT_EQ(half_to_float(float_to_half(70000.0f)), kInf);
  EXPECT_EQ(half_to_float(float_to_half(kInf)), kInf);
  EXPECT_EQ(half_to_float(float_to_half(-kInf)), -kInf);
  EXPECT_TRUE(std::isnan(half_to_float(float_to_half(kNan))));
}

TEST(Fp16Wire, RoundTripIsExactForRepresentables) {
  // Every half-representable value must survive the round trip bitwise.
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const u16 h = static_cast<u16>(rng.next_u64() & 0xFFFFu);
    const float f = half_to_float(h);
    if (std::isnan(f)) continue;  // NaN payloads may canonicalise
    EXPECT_EQ(half_to_float(float_to_half(f)), f);
  }
}

// ---- int8 edges -------------------------------------------------------------

TEST(Int8Wire, QuantizationErrorBoundedByHalfScale) {
  Rng rng(23);
  Tensor t({257});
  for (i64 i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-2.0, 2.0));
  }
  std::vector<i8> wire;
  float scale = 0.0f;
  quantize_int8(t, wire, &scale);
  EXPECT_GT(scale, 0.0f);
  Tensor back({257});
  dequantize_int8(wire, scale, back);
  for (i64 i = 0; i < t.numel(); ++i) {
    EXPECT_LE(std::fabs(back[i] - t[i]), scale * 0.5f + 1e-7f) << i;
  }
}

TEST(Int8Wire, AmaxIsExactAndZeroTensorHasZeroScale) {
  Tensor t({3}, {0.5f, -1.5f, 0.25f});
  std::vector<i8> wire;
  float scale = 0.0f;
  quantize_int8(t, wire, &scale);
  // The extreme element maps to exactly +-127 and decodes back to amax.
  EXPECT_EQ(wire[1], -127);
  Tensor back({3});
  dequantize_int8(wire, scale, back);
  EXPECT_FLOAT_EQ(back[1], -1.5f);

  Tensor zeros({4});
  for (i64 i = 0; i < 4; ++i) zeros[i] = 0.0f;
  quantize_int8(zeros, wire, &scale);
  EXPECT_EQ(scale, 0.0f);
  for (i8 q : wire) EXPECT_EQ(q, 0);
}

TEST(Int8Wire, ScaleIgnoresNonFiniteElements) {
  // An exploded element must not blow up the scale for the finite ones.
  Tensor t({4}, {0.5f, kInf, -1.0f, kNan});
  std::vector<i8> wire;
  float scale = 0.0f;
  quantize_int8(t, wire, &scale);
  EXPECT_FLOAT_EQ(scale, 1.0f / 127.0f);
  EXPECT_EQ(wire[1], 0);  // non-finite encodes as 0 on this path
  EXPECT_EQ(wire[3], 0);
}

TEST(WireRoundtrip, PreservesNanAndInfForTripwires) {
  for (WireFormat format : {WireFormat::kFp16, WireFormat::kInt8}) {
    Tensor t({5}, {1.0f, kNan, -kInf, 0.25f, kInf});
    wire_roundtrip(format, t);
    EXPECT_FLOAT_EQ(t[0], 1.0f);
    EXPECT_TRUE(std::isnan(t[1]));
    EXPECT_EQ(t[2], -kInf);
    EXPECT_EQ(t[4], kInf);
  }
}

TEST(WireRoundtrip, Fp32IsIdentityAndOthersCountRequantize) {
  const bool was_tracing = obs::tracing_enabled();
  obs::set_tracing_enabled(true);  // obs::count is a no-op otherwise
  obs::TraceRecorder::global().clear();
  Tensor t({3}, {0.1f, 0.2f, 0.3f});
  const Tensor before = t;
  wire_roundtrip(WireFormat::kFp32, t);
  for (i64 i = 0; i < 3; ++i) EXPECT_EQ(t[i], before[i]);
  const auto none = obs::TraceRecorder::global().counters();
  EXPECT_EQ(none.find("dist.requantize"), none.end());
  wire_roundtrip(WireFormat::kFp16, t);
  wire_roundtrip(WireFormat::kInt8, t);
  const auto counters = obs::TraceRecorder::global().counters();
  ASSERT_NE(counters.find("dist.requantize"), counters.end());
  EXPECT_EQ(counters.at("dist.requantize"), 2);
  obs::TraceRecorder::global().clear();
  obs::set_tracing_enabled(was_tracing);
}

// ---- error feedback ---------------------------------------------------------

std::vector<std::vector<ag::Variable>> one_param_replicas(int n, i64 numel) {
  std::vector<std::vector<ag::Variable>> out;
  for (int r = 0; r < n; ++r) {
    out.push_back({ag::Variable::leaf(Tensor::zeros({numel}), true)});
  }
  return out;
}

TEST(ErrorFeedback, ResidualStaysBoundedOver100Steps) {
  // Error feedback compensates the quantization error step by step; if it
  // accumulated instead, the residual would grow linearly with the step
  // count. 100 steps of fresh gradients must keep it within one scale.
  const i64 numel = 64;
  auto params = one_param_replicas(2, numel);
  WireState state(params);
  Rng rng(31);
  for (int step = 0; step < 100; ++step) {
    std::vector<Tensor> grads;
    for (int r = 0; r < 2; ++r) {
      Tensor g({numel});
      for (i64 i = 0; i < numel; ++i) {
        g[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
      }
      grads.push_back(std::move(g));
    }
    std::vector<Tensor*> shards{&grads[0], &grads[1]};
    quantize_contributions(shards, WireFormat::kInt8, &state, nullptr, 0);
  }
  // Per-step quantization error is <= scale/2 with scale ~ amax/127 <~ 2/127;
  // a bounded residual sits within a couple of scales, far from 100x.
  EXPECT_LT(state.max_abs_residual(), 0.05f);
}

TEST(ErrorFeedback, ShipsSmallGradientsEventually) {
  // A gradient far below the quantization step vanishes on a plain int8
  // wire (rounds to 0 forever). With error feedback the residual
  // accumulates until it crosses the step, so the *average* shipped value
  // converges to the true gradient — the EF-SGD property that makes the
  // lossy wire safe for convergence.
  const float tiny = 0.003f;  // < scale/2 = (1.0/127)/2 ~ 0.0039
  auto params = one_param_replicas(1, 2);
  WireState state(params);
  double shipped_plain = 0.0;
  double shipped_ef = 0.0;
  const int steps = 100;
  for (int step = 0; step < steps; ++step) {
    Tensor plain({2}, {1.0f, tiny});
    std::vector<Tensor*> p{&plain};
    quantize_contributions(p, WireFormat::kInt8, nullptr, nullptr, 0);
    shipped_plain += static_cast<double>(plain[1]);

    Tensor ef({2}, {1.0f, tiny});
    std::vector<Tensor*> e{&ef};
    quantize_contributions(e, WireFormat::kInt8, &state, nullptr, 0);
    shipped_ef += static_cast<double>(ef[1]);
  }
  EXPECT_EQ(shipped_plain, 0.0);  // silently erased without feedback
  const double want = static_cast<double>(tiny) * steps;
  EXPECT_NEAR(shipped_ef, want, 0.2 * want);
}

TEST(ErrorFeedback, BroadcastKeepsShardsBitIdentical) {
  Rng rng(41);
  std::vector<Tensor> shards;
  for (int r = 0; r < 4; ++r) {
    Tensor t({33});
    for (i64 i = 0; i < 33; ++i) {
      t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    shards.push_back(std::move(t));
  }
  // Make them identical first (the post-allreduce state), then round-trip.
  for (int r = 1; r < 4; ++r) shards[static_cast<std::size_t>(r)] = shards[0];
  std::vector<Tensor*> ptrs;
  for (Tensor& t : shards) ptrs.push_back(&t);
  quantize_broadcast(ptrs, WireFormat::kInt8);
  for (int r = 1; r < 4; ++r) {
    for (i64 i = 0; i < 33; ++i) {
      ASSERT_EQ(shards[static_cast<std::size_t>(r)][i], shards[0][i]);
    }
  }
}

// ---- end-to-end: quantized training -----------------------------------------

struct TrainOutcome {
  float final_loss = 0.0f;
  std::vector<Tensor> final_params;
};

TrainOutcome train_quantized(core::WireFormat format, bool use_ef) {
  core::set_dist_wire(format);
  const int n = 4;
  const i64 shard = 4;
  models::MnistLstmConfig cfg;
  cfg.transform_dim = 8;
  cfg.hidden_dim = 8;
  std::vector<std::unique_ptr<models::MnistLstm>> models;
  std::vector<std::unique_ptr<optim::Optimizer>> opts;
  std::vector<std::vector<ag::Variable>> params;
  for (int r = 0; r < n; ++r) {
    models.push_back(std::make_unique<models::MnistLstm>(cfg));
    opts.push_back(
        optim::make_optimizer("momentum", models.back()->parameters(), 0.0f));
    params.push_back(models.back()->parameters());
  }
  std::unique_ptr<WireState> state;
  if (use_ef) state = std::make_unique<WireState>(params);

  data::SyntheticMnist dataset(128, 16, 42);
  TrainOutcome out;
  for (int step = 0; step < 6; ++step) {
    out.final_loss = synchronous_backward(
        params,
        [&](int r) {
          std::vector<i64> idx;
          for (i64 i = 0; i < shard; ++i) {
            idx.push_back((step * n + r) * shard + i);
          }
          return models[static_cast<std::size_t>(r)]->loss(
              dataset.gather_images(idx, true),
              dataset.gather_labels(idx, true));
        },
        state.get());
    for (auto& opt : opts) {
      opt->set_lr(0.05);
      opt->step();
    }
    // The synchrony invariant must hold under a lossy wire: every replica
    // decodes the identical quantized broadcast.
    EXPECT_EQ(first_divergent_param(params), -1)
        << "step " << step << " format " << core::wire_format_name(format);
  }
  for (const ag::Variable& p : params[0]) out.final_params.push_back(p.value());
  core::set_dist_wire(core::WireFormat::kFp32);
  return out;
}

TEST(QuantizedTraining, ConvergenceParityWithFp32Wire) {
  const TrainOutcome fp32 = train_quantized(core::WireFormat::kFp32, false);
  const TrainOutcome fp16 = train_quantized(core::WireFormat::kFp16, true);
  const TrainOutcome int8 = train_quantized(core::WireFormat::kInt8, true);
  ASSERT_FALSE(std::isnan(fp32.final_loss));
  // Lossy wires follow the fp32 trajectory closely on a short run: the
  // losses agree to a few percent and parameters stay near the fp32 ones.
  EXPECT_NEAR(fp16.final_loss, fp32.final_loss,
              0.05f * std::fabs(fp32.final_loss) + 0.02f);
  EXPECT_NEAR(int8.final_loss, fp32.final_loss,
              0.10f * std::fabs(fp32.final_loss) + 0.05f);
  ASSERT_EQ(fp16.final_params.size(), fp32.final_params.size());
  double max_dev = 0.0;
  for (std::size_t p = 0; p < fp32.final_params.size(); ++p) {
    for (i64 i = 0; i < fp32.final_params[p].numel(); ++i) {
      max_dev = std::max(max_dev,
                         static_cast<double>(std::fabs(
                             fp16.final_params[p][i] - fp32.final_params[p][i])));
    }
  }
  EXPECT_LT(max_dev, 0.1);
}

}  // namespace
}  // namespace legw::dist
