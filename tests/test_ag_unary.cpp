// Gradient checks for the extended unary op set (exp/log/sqrt/abs/clamp).
#include <gtest/gtest.h>

#include <cmath>

#include "ag/gradcheck.hpp"
#include "ag/ops.hpp"
#include "core/kernels.hpp"

namespace legw::ag {
namespace {

using core::Rng;
using core::Tensor;

TEST(AgUnary, ExpForwardAndGrad) {
  Rng rng(1);
  Variable a = Variable::leaf(Tensor::randn({6}, rng, 0.5f), true);
  Variable e = exp(a);
  for (i64 i = 0; i < 6; ++i) {
    EXPECT_NEAR(e.value()[i], std::exp(a.value()[i]), 1e-5f);
  }
  auto r = grad_check([&] { return sum_all(mul(exp(a), exp(a))); }, {a});
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(AgUnary, LogIsInverseOfExpAndGrad) {
  Rng rng(2);
  Variable a = Variable::leaf(Tensor::rand_uniform({5}, rng, 0.5f, 3.0f), true);
  Variable round_trip = log(exp(a));
  for (i64 i = 0; i < 5; ++i) {
    EXPECT_NEAR(round_trip.value()[i], a.value()[i], 1e-4f);
  }
  auto r = grad_check([&] { return sum_all(mul(log(a), log(a))); }, {a},
                      /*eps=*/1e-3);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(AgUnary, SqrtForwardAndGrad) {
  Rng rng(3);
  Variable a = Variable::leaf(Tensor::rand_uniform({5}, rng, 0.5f, 4.0f), true);
  Variable s = sqrt(a);
  for (i64 i = 0; i < 5; ++i) {
    EXPECT_NEAR(s.value()[i] * s.value()[i], a.value()[i], 1e-4f);
  }
  auto r = grad_check([&] { return sum_all(mul(sqrt(a), sqrt(a))); }, {a},
                      /*eps=*/1e-3);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(AgUnary, AbsGradSign) {
  Variable a = Variable::leaf(Tensor({3}, {-2.0f, 3.0f, -0.5f}), true);
  backward(sum_all(abs(a)));
  EXPECT_FLOAT_EQ(a.grad()[0], -1.0f);
  EXPECT_FLOAT_EQ(a.grad()[1], 1.0f);
  EXPECT_FLOAT_EQ(a.grad()[2], -1.0f);
}

TEST(AgUnary, ClampForwardAndSubgradient) {
  Variable a = Variable::leaf(Tensor({4}, {-2.0f, 0.3f, 0.7f, 5.0f}), true);
  Variable c = clamp(a, 0.0f, 1.0f);
  EXPECT_FLOAT_EQ(c.value()[0], 0.0f);
  EXPECT_FLOAT_EQ(c.value()[1], 0.3f);
  EXPECT_FLOAT_EQ(c.value()[2], 0.7f);
  EXPECT_FLOAT_EQ(c.value()[3], 1.0f);
  backward(sum_all(c));
  EXPECT_FLOAT_EQ(a.grad()[0], 0.0f);  // below lo: cut
  EXPECT_FLOAT_EQ(a.grad()[1], 1.0f);  // inside: pass-through
  EXPECT_FLOAT_EQ(a.grad()[2], 1.0f);
  EXPECT_FLOAT_EQ(a.grad()[3], 0.0f);  // above hi: cut
}

TEST(AgUnary, ClampValidatesBounds) {
  Variable a = Variable::leaf(Tensor::zeros({2}), true);
  EXPECT_DEATH((void)clamp(a, 2.0f, 1.0f), "lo must be <= hi");
}

TEST(AgUnary, LogSumExpViaComposition) {
  // softmax-free logsumexp: log(sum(exp(x))) composed from primitives,
  // gradient must equal softmax(x).
  Rng rng(4);
  Variable x = Variable::leaf(Tensor::randn({1, 4}, rng), true);
  Variable lse = log(sum_all(exp(x)));
  backward(lse);
  Tensor sm({1, 4});
  core::softmax_rows(x.value().data(), sm.data(), 1, 4);
  for (i64 i = 0; i < 4; ++i) {
    EXPECT_NEAR(x.grad()[i], sm[i], 1e-5f);
  }
}

}  // namespace
}  // namespace legw::ag
