// Checkpointing, gradient accumulation, and batch-size schedules.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "ag/ops.hpp"
#include "dist/overlap.hpp"
#include "models/mnist_lstm.hpp"
#include "nn/layers.hpp"
#include "nn/serialize.hpp"
#include "sched/batch_schedule.hpp"
#include "train/accumulate.hpp"

namespace legw {
namespace {

using core::Rng;
using core::Tensor;

struct TempFile {
  std::string path;
  explicit TempFile(const char* name)
      : path(std::string("/tmp/legw_test_") + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(Checkpoint, RoundTripsLinearLayer) {
  TempFile tmp("linear.ckpt");
  Rng rng(1);
  nn::Linear a(4, 3, rng);
  ASSERT_TRUE(nn::save_checkpoint(a, tmp.path).ok());

  Rng rng2(999);  // different init
  nn::Linear b(4, 3, rng2);
  EXPECT_NE(a.weight().value()[0], b.weight().value()[0]);
  const nn::SerializeResult restored = nn::load_checkpoint(b, tmp.path);
  ASSERT_TRUE(restored.ok()) << restored.message;
  EXPECT_EQ(restored.restored, 2);
  for (i64 i = 0; i < a.weight().numel(); ++i) {
    ASSERT_EQ(a.weight().value()[i], b.weight().value()[i]);
  }
  for (i64 i = 0; i < a.bias().numel(); ++i) {
    ASSERT_EQ(a.bias().value()[i], b.bias().value()[i]);
  }
}

TEST(Checkpoint, RoundTripsFullModelAndPreservesOutputs) {
  TempFile tmp("mnist.ckpt");
  models::MnistLstmConfig cfg;
  cfg.transform_dim = 8;
  cfg.hidden_dim = 8;
  models::MnistLstm a(cfg);
  Rng rng(2);
  Tensor images = Tensor::rand_uniform({2, 784}, rng);
  ag::Variable out_a = a.forward(images);

  ASSERT_TRUE(nn::save_checkpoint(a, tmp.path).ok());
  models::MnistLstmConfig cfg_b = cfg;
  cfg_b.seed = 777;  // different init
  models::MnistLstm b(cfg_b);
  ASSERT_TRUE(nn::load_checkpoint(b, tmp.path).ok());
  ag::Variable out_b = b.forward(images);
  for (i64 i = 0; i < out_a.numel(); ++i) {
    ASSERT_EQ(out_a.value()[i], out_b.value()[i]);
  }
}

TEST(Checkpoint, RejectsShapeMismatchWithoutAborting) {
  TempFile tmp("mismatch.ckpt");
  Rng rng(3);
  nn::Linear a(4, 3, rng);
  ASSERT_TRUE(nn::save_checkpoint(a, tmp.path).ok());
  nn::Linear b(5, 3, rng);
  const nn::SerializeResult res = nn::load_checkpoint(b, tmp.path);
  EXPECT_EQ(res.status, nn::SerializeStatus::kShapeMismatch);
  EXPECT_NE(res.message.find("shape"), std::string::npos);
}

TEST(Checkpoint, RejectsCorruptMagicWithoutAborting) {
  TempFile tmp("corrupt.ckpt");
  std::FILE* f = std::fopen(tmp.path.c_str(), "wb");
  std::fwrite("NOTACKPT_________", 1, 16, f);
  std::fclose(f);
  Rng rng(4);
  nn::Linear a(2, 2, rng);
  const nn::SerializeResult res = nn::load_checkpoint(a, tmp.path);
  EXPECT_EQ(res.status, nn::SerializeStatus::kBadMagic);
}

TEST(GradientAccumulator, MatchesLargeBatchGradient) {
  // mean-of-means over equal micro-batches == mean over the union.
  Rng rng(5);
  nn::Linear layer(3, 2, rng);
  Tensor x = Tensor::randn({8, 3}, rng);
  Rng wrng(6);
  Tensor w = Tensor::randn({8, 2}, wrng);

  // Full batch.
  layer.zero_grad();
  ag::backward(ag::mean_all(ag::mul(
      layer.forward(ag::Variable::constant(x)), ag::Variable::constant(w))));
  Tensor full = layer.weight().grad();

  // 4 micro-batches of 2.
  layer.zero_grad();
  train::GradientAccumulator acc(layer.parameters());
  for (int m = 0; m < 4; ++m) {
    acc.micro_step([&] {
      Tensor xm({2, 3});
      Tensor wm({2, 2});
      for (i64 r = 0; r < 2; ++r) {
        for (i64 c = 0; c < 3; ++c) xm.at(r, c) = x.at(m * 2 + r, c);
        for (i64 c = 0; c < 2; ++c) wm.at(r, c) = w.at(m * 2 + r, c);
      }
      return ag::mean_all(ag::mul(layer.forward(ag::Variable::constant(xm)),
                                  ag::Variable::constant(wm)));
    });
  }
  EXPECT_EQ(acc.pending_micro_steps(), 4);
  acc.finish();
  EXPECT_EQ(acc.pending_micro_steps(), 0);
  for (i64 i = 0; i < full.numel(); ++i) {
    EXPECT_NEAR(layer.weight().grad()[i], full[i], 1e-5f) << "elem " << i;
  }
}

TEST(GradientAccumulator, ComposesWithOverlappedBackward) {
  // Large-batch composition: 2 replicas × 2 micro-batches through the
  // overlapped allreduce engine (zero_grads=false so micro-batch means
  // accumulate) must reproduce the single-model batch-8 gradient.
  const int n_replicas = 2;
  const int n_micro = 2;
  const i64 rows_per_shard = 2;
  Rng rng(5);
  nn::Linear reference(3, 2, rng);
  Tensor x = Tensor::randn({8, 3}, rng);
  Rng wrng(6);
  Tensor w = Tensor::randn({8, 2}, wrng);

  auto rows = [&](const Tensor& src, i64 begin, i64 count, i64 cols) {
    Tensor out({count, cols});
    for (i64 r = 0; r < count; ++r) {
      for (i64 c = 0; c < cols; ++c) out.at(r, c) = src.at(begin + r, c);
    }
    return out;
  };

  // Reference: one model, the full batch of 8.
  reference.zero_grad();
  ag::backward(ag::mean_all(
      ag::mul(reference.forward(ag::Variable::constant(x)),
              ag::Variable::constant(w))));
  const Tensor full = reference.weight().grad();

  // Two identically-initialised replicas (same seed as the reference).
  std::vector<std::unique_ptr<nn::Linear>> replicas;
  std::vector<std::vector<ag::Variable>> replica_params;
  for (int r = 0; r < n_replicas; ++r) {
    Rng seed(5);
    replicas.push_back(std::make_unique<nn::Linear>(3, 2, seed));
    replicas.back()->zero_grad();
    replica_params.push_back(replicas.back()->parameters());
  }

  train::GradientAccumulator acc(replica_params[0]);
  dist::OverlapConfig config;
  config.zero_grads = false;  // the accumulator owns gradient lifetime
  for (int m = 0; m < n_micro; ++m) {
    const dist::OverlapResult res = dist::overlapped_backward(
        replica_params,
        [&](int r) {
          const i64 begin = (m * n_replicas + r) * rows_per_shard;
          return ag::mean_all(ag::mul(
              replicas[static_cast<std::size_t>(r)]->forward(
                  ag::Variable::constant(rows(x, begin, rows_per_shard, 3))),
              ag::Variable::constant(rows(w, begin, rows_per_shard, 2))));
        },
        config);
    ASSERT_TRUE(res.ok) << res.error;
    acc.count_external_micro_step();
  }
  EXPECT_EQ(acc.pending_micro_steps(), n_micro);
  acc.finish();

  const Tensor& got = replica_params[0][0].grad();
  ASSERT_EQ(got.numel(), full.numel());
  for (i64 i = 0; i < full.numel(); ++i) {
    EXPECT_NEAR(got[i], full[i], 1e-5f) << "elem " << i;
  }
}

TEST(BatchSchedule, ConstantAndMultiStep) {
  sched::ConstantBatch c(64);
  EXPECT_EQ(c.batch(0.0), 64);
  EXPECT_EQ(c.batch(99.0), 64);

  sched::MultiStepBatch m(32, {2.0, 4.0}, 4);
  EXPECT_EQ(m.batch(0.0), 32);
  EXPECT_EQ(m.batch(1.9), 32);
  EXPECT_EQ(m.batch(2.0), 128);
  EXPECT_EQ(m.batch(4.0), 512);
}

TEST(BatchSchedule, GrowthDualOfLrDecay) {
  // LR decay x0.25 at epochs {2,4,6} with a 512 memory cap from batch 32:
  // factor 4, but the third milestone would hit 2048 > 512, so it's dropped.
  auto dual = sched::batch_growth_dual(32, {2.0, 4.0, 6.0}, 0.25f, 512);
  EXPECT_EQ(dual->batch(0.0), 32);
  EXPECT_EQ(dual->batch(3.0), 128);
  EXPECT_EQ(dual->batch(5.0), 512);
  EXPECT_EQ(dual->batch(7.0), 512);  // capped: third step dropped
}

TEST(BatchSchedule, DescribeIsInformative) {
  sched::MultiStepBatch m(32, {1.0}, 2);
  EXPECT_NE(m.describe().find("multistep_batch"), std::string::npos);
}

}  // namespace
}  // namespace legw
