// Property battery for the dist layer: tree-allreduce determinism and
// mean-correctness over shard counts 1–16 (odd, even, non-power-of-two),
// degenerate tensor shapes, the bucket planner's invariants, the graceful
// fit_device_model fallbacks, fp16 round-trip edge cases, and the
// overlap-aware cluster step-time model.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ag/variable.hpp"
#include "dist/allreduce.hpp"
#include "dist/cluster_model.hpp"
#include "dist/compression.hpp"
#include "dist/overlap.hpp"

namespace legw::dist {
namespace {

using core::Rng;
using core::Tensor;

class AllreducePropertyTest : public ::testing::TestWithParam<int> {};

// Bitwise determinism across repeated runs, for every shard count 1–16 and
// for zero-element, 1-element and non-round tensor sizes.
TEST_P(AllreducePropertyTest, BitwiseDeterministicAcrossRuns) {
  const int n = GetParam();
  for (const i64 numel : {i64{0}, i64{1}, i64{33}, i64{64}}) {
    auto run = [&](std::vector<Tensor>& storage) {
      storage.clear();
      Rng rng(1234 + static_cast<u64>(numel));
      for (int i = 0; i < n; ++i) {
        storage.push_back(numel > 0 ? Tensor::randn({numel}, rng)
                                    : Tensor({0}));
      }
      std::vector<Tensor*> ptrs;
      for (auto& t : storage) ptrs.push_back(&t);
      tree_allreduce_mean(ptrs);
    };
    std::vector<Tensor> s1, s2;
    run(s1);
    run(s2);
    for (int i = 0; i < n; ++i) {
      for (i64 j = 0; j < numel; ++j) {
        ASSERT_EQ(s1[static_cast<std::size_t>(i)][j],
                  s2[static_cast<std::size_t>(i)][j])
            << "shards=" << n << " numel=" << numel << " elem " << j;
      }
    }
  }
}

// Every shard ends up holding the mean, verified against a straightforward
// double-precision reference summation.
TEST_P(AllreducePropertyTest, MatchesDoublePrecisionMean) {
  const int n = GetParam();
  const i64 numel = 47;
  Rng rng(99 + static_cast<u64>(n));
  std::vector<Tensor> shards;
  for (int i = 0; i < n; ++i) shards.push_back(Tensor::randn({numel}, rng));

  std::vector<double> reference(static_cast<std::size_t>(numel), 0.0);
  for (const Tensor& t : shards) {
    for (i64 j = 0; j < numel; ++j) {
      reference[static_cast<std::size_t>(j)] += static_cast<double>(t[j]);
    }
  }
  for (double& v : reference) v /= static_cast<double>(n);

  std::vector<Tensor*> ptrs;
  for (auto& t : shards) ptrs.push_back(&t);
  tree_allreduce_mean(ptrs);

  for (int i = 0; i < n; ++i) {
    for (i64 j = 0; j < numel; ++j) {
      ASSERT_NEAR(shards[static_cast<std::size_t>(i)][j],
                  reference[static_cast<std::size_t>(j)], 1e-5)
          << "shards=" << n << " elem " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, AllreducePropertyTest,
                         ::testing::Range(1, 17));

TEST(AllreduceProperty, OneElementTensors) {
  Tensor a({1}, {2.0f});
  Tensor b({1}, {4.0f});
  std::vector<Tensor*> shards = {&a, &b};
  tree_allreduce_mean(shards);
  EXPECT_FLOAT_EQ(a[0], 3.0f);
  EXPECT_FLOAT_EQ(b[0], 3.0f);
}

// ---- bucket planner ---------------------------------------------------------

std::vector<ag::Variable> make_params(const std::vector<i64>& sizes) {
  std::vector<ag::Variable> params;
  Rng rng(7);
  for (i64 s : sizes) {
    params.push_back(ag::Variable::leaf(Tensor::randn({s}, rng), true));
  }
  return params;
}

TEST(PlanBuckets, CoversEveryParamOnceInOrder) {
  const auto params = make_params({100, 300, 50, 50, 700, 10, 10, 10});
  const i64 target = 256 * static_cast<i64>(sizeof(float));  // 1 KB
  const auto buckets = plan_buckets(params, target);
  std::vector<std::size_t> flattened;
  for (const auto& b : buckets) {
    ASSERT_FALSE(b.empty());
    for (std::size_t p : b) flattened.push_back(p);
  }
  ASSERT_EQ(flattened.size(), params.size());
  for (std::size_t i = 0; i < flattened.size(); ++i) {
    EXPECT_EQ(flattened[i], i) << "buckets must cover params consecutively";
  }
}

TEST(PlanBuckets, ClosesBucketsAtTargetSize) {
  const auto params = make_params({100, 300, 50, 50, 700, 10, 10, 10});
  const i64 target = 256 * static_cast<i64>(sizeof(float));
  const auto buckets = plan_buckets(params, target);
  EXPECT_GT(buckets.size(), 1u);
  for (const auto& b : buckets) {
    // The bucket was still open before its last parameter was added.
    i64 before_last = 0;
    for (std::size_t i = 0; i + 1 < b.size(); ++i) {
      before_last += params[b[i]].numel() * static_cast<i64>(sizeof(float));
    }
    EXPECT_LT(before_last, target);
  }
}

TEST(PlanBuckets, DeterministicAndSingleBucketWhenLarge) {
  const auto params = make_params({100, 300, 50});
  const auto a = plan_buckets(params, 1 << 20);
  const auto b = plan_buckets(params, 1 << 20);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].size(), params.size());
}

// ---- fit_device_model degenerate inputs ------------------------------------

TEST(FitDeviceModel, EmptyInputReturnsDefaultModel) {
  const DeviceModel m = fit_device_model({});
  const DeviceModel def{};
  EXPECT_EQ(m.peak_samples_per_sec, def.peak_samples_per_sec);
  EXPECT_EQ(m.half_saturation_batch, def.half_saturation_batch);
}

TEST(FitDeviceModel, SingleSampleFallsBackToThroughput) {
  const DeviceModel m = fit_device_model({{32, 0.1}});
  EXPECT_NEAR(m.peak_samples_per_sec, 320.0, 1e-9);
  EXPECT_EQ(m.half_saturation_batch, 0.0);
  EXPECT_TRUE(std::isfinite(m.step_seconds(64.0)));
}

TEST(FitDeviceModel, AllEqualBatchSizesFallBackToMeanThroughput) {
  // Identical batch sizes leave the regression denominator at zero; the
  // fallback is the mean measured throughput with no saturation term.
  const DeviceModel m = fit_device_model({{64, 0.2}, {64, 0.25}, {64, 0.2}});
  const double expected = (64.0 / 0.2 + 64.0 / 0.25 + 64.0 / 0.2) / 3.0;
  EXPECT_NEAR(m.peak_samples_per_sec, expected, 1e-9);
  EXPECT_EQ(m.half_saturation_batch, 0.0);
}

TEST(FitDeviceModel, ZeroTimeSamplesDoNotDivideByZero) {
  const DeviceModel m = fit_device_model({{64, 0.0}});
  EXPECT_TRUE(std::isfinite(m.peak_samples_per_sec));
  EXPECT_GT(m.peak_samples_per_sec, 0.0);
}

// ---- fp16 round-trip edge cases --------------------------------------------

TEST(Fp16RoundTrip, EmptyTensor) {
  Tensor empty({0});
  std::vector<u16> wire;
  compress_fp16(empty, wire);
  EXPECT_TRUE(wire.empty());
  Tensor out({0});
  decompress_fp16(wire, out);
  EXPECT_EQ(out.numel(), 0);
}

TEST(Fp16RoundTrip, AllZeroTensorIsExact) {
  Tensor zeros = Tensor::zeros({17});
  std::vector<u16> wire;
  compress_fp16(zeros, wire);
  Tensor out = Tensor::zeros({17});
  decompress_fp16(wire, out);
  for (i64 i = 0; i < out.numel(); ++i) {
    EXPECT_EQ(out[i], 0.0f);
  }
}

TEST(Fp16Allreduce, EmptyAndAllZeroShards) {
  Tensor a({0}), b({0});
  std::vector<Tensor*> empty_shards = {&a, &b};
  tree_allreduce_mean_fp16(empty_shards);  // must not crash

  Tensor z1 = Tensor::zeros({9});
  Tensor z2 = Tensor::zeros({9});
  Tensor z3 = Tensor::zeros({9});
  std::vector<Tensor*> zero_shards = {&z1, &z2, &z3};
  tree_allreduce_mean_fp16(zero_shards);
  for (Tensor* t : zero_shards) {
    for (i64 i = 0; i < t->numel(); ++i) EXPECT_EQ((*t)[i], 0.0f);
  }
}

// ---- overlap-aware cluster model -------------------------------------------

TEST(ClusterModel, OverlappedStepNeverSlowerThanSequential) {
  ClusterConfig cfg;
  cfg.device = {1000.0, 64.0};
  cfg.max_batch_per_worker = 256;
  for (i64 batch : {256, 512, 1024, 2048}) {
    const double seq = cluster_step_seconds(cfg, batch, CommMode::kSequential);
    const double ovl = cluster_step_seconds(cfg, batch, CommMode::kOverlapped);
    EXPECT_LE(ovl, seq) << "batch " << batch;
  }
  // With multiple workers paying a real comm term, overlap strictly wins.
  cfg.allreduce_latency_sec = 0.05;
  EXPECT_LT(cluster_step_seconds(cfg, 1024, CommMode::kOverlapped),
            cluster_step_seconds(cfg, 1024, CommMode::kSequential));
}

TEST(ClusterModel, ZeroOverlappableFractionEqualsSequential) {
  ClusterConfig cfg;
  cfg.device = {1000.0, 64.0};
  cfg.max_batch_per_worker = 128;
  cfg.overlappable_fraction = 0.0;
  EXPECT_DOUBLE_EQ(cluster_step_seconds(cfg, 1024, CommMode::kOverlapped),
                   cluster_step_seconds(cfg, 1024, CommMode::kSequential));
}

TEST(ClusterModel, EpochTimeDefaultsToSequentialMode) {
  ClusterConfig cfg;
  cfg.device = {1000.0, 64.0};
  cfg.max_batch_per_worker = 256;
  const auto def = cluster_epoch_time(cfg, 100000, 1024);
  const auto seq =
      cluster_epoch_time(cfg, 100000, 1024, CommMode::kSequential);
  EXPECT_DOUBLE_EQ(def.step_seconds, seq.step_seconds);
  const auto ovl =
      cluster_epoch_time(cfg, 100000, 1024, CommMode::kOverlapped);
  EXPECT_LE(ovl.epoch_seconds, seq.epoch_seconds);
}

}  // namespace
}  // namespace legw::dist
