// TSA negative test: acquiring mutexes against a declared ACQUIRED_BEFORE
// order must be a compile error (ordering diagnostics live under
// -Wthread-safety-beta, promoted to errors by the harness). Build harness
// expects this file to FAIL to compile (WILL_FAIL).
#include "core/mutex.hpp"

namespace {

class Ordered {
 public:
  void correct_order() {
    legw::core::MutexLock first(submit_mu_);
    legw::core::MutexLock second(mu_);
    ++depth_;
  }

  // BUG: takes mu_ then submit_mu_, inverting the declared order.
  void inverted_order() {
    legw::core::MutexLock second(mu_);
    legw::core::MutexLock first(submit_mu_);
    ++depth_;
  }

 private:
  legw::core::Mutex submit_mu_ LEGW_ACQUIRED_BEFORE(mu_);
  legw::core::Mutex mu_;
  int depth_ LEGW_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Ordered o;
  o.correct_order();
  o.inverted_order();
  return 0;
}
