// TSA negative test: calling a REQUIRES(mu) function without holding mu must
// be a compile error. Build harness expects this file to FAIL to compile
// (WILL_FAIL).
#include "core/mutex.hpp"

namespace {

class Planner {
 public:
  void rebuild() {
    legw::core::MutexLock lock(mu_);
    rebuild_locked();
  }

  // BUG: calls the REQUIRES helper with no lock held.
  void rebuild_unlocked() { rebuild_locked(); }

 private:
  void rebuild_locked() LEGW_REQUIRES(mu_) { ++version_; }

  legw::core::Mutex mu_;
  int version_ LEGW_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Planner p;
  p.rebuild();
  p.rebuild_unlocked();
  return 0;
}
