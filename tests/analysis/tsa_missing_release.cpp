// TSA negative test: a path that returns while still holding a manually
// acquired mutex must be a compile error (capability held at function exit).
// Build harness expects this file to FAIL to compile (WILL_FAIL).
#include "core/mutex.hpp"

namespace {

class Queue {
 public:
  bool pop_nonempty() {
    mu_.lock();
    if (size_ == 0) {
      return false;  // BUG: early return leaks mu_ held
    }
    --size_;
    mu_.unlock();
    return true;
  }

 private:
  legw::core::Mutex mu_;
  int size_ LEGW_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Queue q;
  return q.pop_nonempty() ? 0 : 1;
}
