// TSA negative test: reading a GUARDED_BY field without holding its mutex
// must be a compile error (-Werror=thread-safety). Build harness expects
// this file to FAIL to compile; see CMakeLists.txt (WILL_FAIL).
#include "core/mutex.hpp"

namespace {

class Account {
 public:
  void deposit(long amount) {
    legw::core::MutexLock lock(mu_);
    balance_ += amount;
  }

  // BUG: guarded read with no lock held.
  long balance() const { return balance_; }

 private:
  mutable legw::core::Mutex mu_;
  long balance_ LEGW_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account a;
  a.deposit(1);
  return static_cast<int>(a.balance());
}
