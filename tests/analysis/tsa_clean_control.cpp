// TSA positive control: the idioms the negative tests break, written
// correctly — guarded access under MutexLock, REQUIRES helpers called with
// the lock held, CondVar waits in explicit loops, early unlock, and the
// declared two-mutex ordering. This file must COMPILE CLEANLY under
// -Werror=thread-safety; if it ever goes red, the harness (not the seeded
// bugs) is broken.
#include "core/mutex.hpp"

namespace {

class Engine {
 public:
  void submit(int task) LEGW_EXCLUDES(submit_mu_, mu_) {
    legw::core::MutexLock submit_lock(submit_mu_);
    legw::core::MutexLock lock(mu_);
    pending_ += task;
    cv_.notify_one();
  }

  int drain() LEGW_EXCLUDES(mu_) {
    legw::core::MutexLock lock(mu_);
    while (pending_ == 0) cv_.wait(mu_);
    const int claimed = claim_locked();
    lock.unlock();  // early release: "work" happens outside the lock
    return claimed;
  }

 private:
  int claim_locked() LEGW_REQUIRES(mu_) {
    const int out = pending_;
    pending_ = 0;
    return out;
  }

  legw::core::Mutex submit_mu_ LEGW_ACQUIRED_BEFORE(mu_);
  legw::core::Mutex mu_;
  legw::core::CondVar cv_;
  int pending_ LEGW_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Engine e;
  e.submit(1);
  return e.drain() == 1 ? 0 : 1;
}
