// Neural machine translation with the GNMT-style seq2seq model: trains on
// the synthetic translation task, then decodes a few test sentences and
// reports corpus BLEU. Shows the attention-based decoder API end to end.
//
// Run: ./build/examples/translation [epochs]
#include <cstdio>
#include <cstdlib>

#include "data/images.hpp"
#include "data/translation.hpp"
#include "models/gnmt.hpp"
#include "optim/optimizer.hpp"
#include "sched/legw.hpp"
#include "train/metrics.hpp"

using namespace legw;

namespace {
void print_tokens(const char* label, const std::vector<i32>& tokens) {
  std::printf("  %-10s", label);
  for (i32 t : tokens) std::printf(" %3d", t);
  std::printf("\n");
}
}  // namespace

int main(int argc, char** argv) {
  const i64 epochs = argc > 1 ? std::atoll(argv[1]) : 4;
  std::printf("GNMT-style translation on the synthetic task (%lld epochs)\n\n",
              static_cast<long long>(epochs));

  data::TranslationConfig tcfg;
  tcfg.src_vocab = 60;
  tcfg.tgt_vocab = 60;
  tcfg.min_len = 3;
  tcfg.max_len = 7;
  tcfg.n_train = 1024;
  tcfg.n_test = 128;
  data::SyntheticTranslation dataset(tcfg);

  models::GnmtConfig mcfg;
  mcfg.src_vocab = 60;
  mcfg.tgt_vocab = 60;
  mcfg.embed_dim = 16;
  mcfg.hidden_dim = 16;
  mcfg.num_layers = 2;
  models::Gnmt model(mcfg);
  std::printf("model: %lld parameters (bi-encoder, Bahdanau attention)\n\n",
              static_cast<long long>(model.num_parameters()));

  const i64 batch = 32;
  const sched::LegwBaseline baseline{16, 0.02f, 0.1};
  auto schedule = sched::legw_constant(baseline, batch);
  auto opt = optim::make_optimizer("adam", model.parameters());

  data::IndexBatcher batcher(static_cast<i64>(dataset.train().size()), batch, 3);
  core::Rng dropout_rng(5);
  const i64 steps_per_epoch = batcher.batches_per_epoch();
  i64 step = 0;
  for (i64 epoch = 0; epoch < epochs; ++epoch) {
    double epoch_loss = 0.0;
    for (i64 s = 0; s < steps_per_epoch; ++s, ++step) {
      opt->set_lr(schedule->lr(static_cast<double>(step) / steps_per_epoch));
      auto b = data::make_translation_batch(dataset.train(), batcher.next());
      model.zero_grad();
      ag::Variable loss = model.loss(b, dropout_rng);
      epoch_loss += loss.value()[0];
      ag::backward(loss);
      optim::clip_grad_norm(opt->params(), 5.0f);
      opt->step();
    }
    std::printf("epoch %lld: mean train loss %.4f\n",
                static_cast<long long>(epoch + 1),
                epoch_loss / steps_per_epoch);
  }

  // Evaluate: greedy-decode the test set, score with corpus BLEU.
  model.set_training(false);
  std::vector<std::vector<i32>> hyps, refs;
  const i64 n_test = static_cast<i64>(dataset.test().size());
  for (i64 begin = 0; begin < n_test; begin += 64) {
    const i64 end = std::min(n_test, begin + 64);
    std::vector<i64> idx;
    for (i64 i = begin; i < end; ++i) idx.push_back(i);
    auto b = data::make_translation_batch(dataset.test(), idx);
    auto decoded = model.greedy_decode(b, b.tgt_len + 4);
    for (i64 i = 0; i < end - begin; ++i) {
      hyps.push_back(decoded[static_cast<std::size_t>(i)]);
      refs.push_back(dataset.test()[static_cast<std::size_t>(begin + i)].tgt);
    }
  }
  std::printf("\ntest BLEU: %.2f\n\nsample decodes:\n",
              train::corpus_bleu(hyps, refs));
  for (int i = 0; i < 3; ++i) {
    print_tokens("source:", dataset.test()[static_cast<std::size_t>(i)].src);
    print_tokens("reference:", refs[static_cast<std::size_t>(i)]);
    print_tokens("decoded:", hyps[static_cast<std::size_t>(i)]);
    std::printf("\n");
  }
  return 0;
}
