// Gradient-noise-scale analysis (McCandlish et al. 2018) on the MNIST-LSTM:
// estimates the critical batch size, the natural companion to LEGW — it
// tells you *how far* batch scaling pays off before LEGW's schedule keeps
// you converging there.
//
// Run: ./build/examples/noise_scale [--draws N] [--train_steps N]
#include <cstdio>

#include "analysis/gradient_noise.hpp"
#include "core/flags.hpp"
#include "data/images.hpp"
#include "data/synthetic_mnist.hpp"
#include "models/mnist_lstm.hpp"
#include "optim/optimizer.hpp"

using namespace legw;

int main(int argc, char** argv) {
  core::Flags flags(argc, argv);
  const int n_draws = static_cast<int>(flags.get_int("draws", 8));
  const i64 train_steps = flags.get_int("train_steps", 30);

  std::printf("Gradient noise scale of the MNIST-LSTM objective\n\n");
  data::SyntheticMnist dataset(1024, 128, 42);
  models::MnistLstmConfig mcfg;
  mcfg.transform_dim = 24;
  mcfg.hidden_dim = 24;
  models::MnistLstm model(mcfg);

  core::Rng draw_rng(11);
  auto grad_sq_at = [&](i64 batch, int) {
    std::vector<i64> idx;
    idx.reserve(static_cast<std::size_t>(batch));
    for (i64 i = 0; i < batch; ++i) {
      idx.push_back(static_cast<i64>(
          draw_rng.uniform_int(static_cast<u64>(dataset.n_train()))));
    }
    model.zero_grad();
    ag::Variable loss = model.loss(dataset.gather_images(idx, true),
                                   dataset.gather_labels(idx, true));
    ag::backward(loss);
    double sq = 0.0;
    for (const auto& p : model.parameters()) {
      const double n = p.grad().l2_norm();
      sq += n * n;
    }
    return sq;
  };

  auto report = [&](const char* label) {
    auto e = analysis::estimate_noise_scale_averaged(8, 256, n_draws,
                                                     grad_sq_at);
    if (e.valid) {
      std::printf("%-22s tr(Sigma) %10.4f  ||G||^2 %10.6f  B_simple %8.1f\n",
                  label, e.trace_sigma, e.grad_sq_norm, e.noise_scale);
    } else {
      std::printf("%-22s estimate invalid (noise dominates; take more draws)\n",
                  label);
    }
  };

  report("at initialisation:");

  // Train briefly — the noise scale typically grows as the loss falls
  // (gradients shrink faster than their variance).
  auto opt = optim::make_optimizer("momentum", model.parameters());
  opt->set_lr(0.1f);
  data::IndexBatcher batcher(dataset.n_train(), 32, 3);
  for (i64 s = 0; s < train_steps; ++s) {
    std::vector<i64> idx = batcher.next();
    model.zero_grad();
    ag::Variable loss = model.loss(dataset.gather_images(idx, true),
                                   dataset.gather_labels(idx, true));
    ag::backward(loss);
    optim::clip_grad_norm(opt->params(), 5.0f);
    opt->step();
  }
  char label[64];
  std::snprintf(label, sizeof label, "after %lld steps:",
                static_cast<long long>(train_steps));
  report(label);

  std::printf(
      "\nReading: batches well below B_simple average away noise (linear\n"
      "scaling regime); beyond it returns diminish — the regime where the\n"
      "paper's Sqrt Scaling + LEGW warmup is the right tool.\n");
  return 0;
}
