// ResNet + LARS + LEGW: the paper's ImageNet recipe (Table 3) on the
// synthetic image dataset, at a single user-chosen batch size.
//
// Run: ./build/examples/imagenet_resnet [batch_size] [epochs]
#include <cstdio>
#include <cstdlib>

#include "data/images.hpp"
#include "models/resnet.hpp"
#include "sched/legw.hpp"
#include "train/runners.hpp"

using namespace legw;

int main(int argc, char** argv) {
  const i64 batch = argc > 1 ? std::atoll(argv[1]) : 128;
  const i64 epochs = argc > 2 ? std::atoll(argv[2]) : 4;
  std::printf("ResNet + LARS + LEGW, batch %lld, %lld epochs\n\n",
              static_cast<long long>(batch), static_cast<long long>(epochs));

  data::SyntheticImages dataset(/*n_train=*/2048, /*n_test=*/512, /*seed=*/42);

  models::ResNetConfig model;
  model.width = 8;
  model.blocks_per_stage = 1;

  // Baseline tuned at batch 32; everything else follows from LEGW.
  const sched::LegwBaseline baseline{32, 4.0f, 0.02};
  const auto recipe = sched::legw_scale(baseline, batch);
  auto schedule = sched::legw_schedule(baseline, batch, [&](float peak) {
    return std::make_shared<sched::PolynomialLr>(
        peak, static_cast<double>(epochs), 2.0f);
  });
  std::printf("LEGW recipe: k=%.1f, peak LR %.4f, warmup %.4f epochs\n",
              recipe.scale_factor, recipe.peak_lr, recipe.warmup_epochs);
  std::printf("schedule: %s\n\n", schedule->describe().c_str());

  train::RunConfig run;
  run.batch_size = batch;
  run.epochs = epochs;
  run.optimizer = "lars";
  run.weight_decay = 1e-4f;
  run.schedule = schedule.get();
  run.verbose = true;

  auto result = train::train_resnet(dataset, model, run);
  std::printf("\nfinal test accuracy: %.4f (%s, %.1fs)\n", result.final_metric,
              result.diverged ? "DIVERGED" : "converged",
              result.wall_seconds);
  return 0;
}
