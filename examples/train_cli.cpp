// Unified command-line trainer: any of the four paper applications, any
// solver, any batch size, with the LEGW schedule derived automatically from
// a baseline given on the command line.
//
// Usage:
//   train_cli --app mnist|ptb|gnmt|resnet [options]
// Common options (defaults in brackets):
//   --batch N            batch size [app baseline]
//   --epochs N           training epochs [app default]
//   --optimizer NAME     sgd|momentum|nesterov|adagrad|rmsprop|adam|
//                        adadelta|lars|lamb [app default]
//   --base_batch N       LEGW baseline batch [app default]
//   --base_lr X          LEGW baseline peak LR [app default]
//   --base_warmup X      LEGW baseline warmup epochs [app default]
//   --weight_decay X     L2 coefficient [app default]
//   --seed N             run seed [1]
//   --quiet              suppress per-epoch lines
// Examples:
//   train_cli --app mnist --batch 256
//   train_cli --app resnet --batch 512 --epochs 8
//   train_cli --app ptb --optimizer adam --base_lr 0.004
#include <cstdio>
#include <memory>

#include "core/flags.hpp"
#include "data/corpus.hpp"
#include "data/images.hpp"
#include "data/synthetic_mnist.hpp"
#include "data/translation.hpp"
#include "models/gnmt.hpp"
#include "models/mnist_lstm.hpp"
#include "models/ptb_model.hpp"
#include "models/resnet.hpp"
#include "sched/legw.hpp"
#include "train/runners.hpp"

using namespace legw;

namespace {

struct AppDefaults {
  i64 base_batch;
  float base_lr;
  double base_warmup;
  i64 epochs;
  const char* optimizer;
  float weight_decay;
};

void print_result(const train::RunResult& r, const char* metric_name) {
  std::printf("\nresult: %s %.4f | train loss %.4f | %lld steps | %.1fs%s\n",
              metric_name, r.final_metric, r.final_train_loss,
              static_cast<long long>(r.steps), r.wall_seconds,
              r.diverged ? " | DIVERGED" : "");
}

}  // namespace

int main(int argc, char** argv) {
  core::Flags flags(argc, argv);
  const std::string app = flags.get_string("app", "mnist");

  AppDefaults d;
  if (app == "mnist") {
    d = {32, 0.1f, 0.1, 10, "momentum", 0.0f};
  } else if (app == "ptb") {
    d = {8, 0.5f, 0.2, 8, "momentum", 0.0f};
  } else if (app == "gnmt") {
    d = {16, 0.015f, 0.1, 30, "adam", 0.0f};
  } else if (app == "resnet") {
    d = {32, 4.0f, 0.02, 5, "lars", 1e-4f};
  } else {
    std::fprintf(stderr, "unknown --app '%s' (mnist|ptb|gnmt|resnet)\n",
                 app.c_str());
    return 1;
  }

  sched::LegwBaseline base;
  base.batch_size = flags.get_int("base_batch", d.base_batch);
  base.peak_lr = static_cast<float>(flags.get_double("base_lr", d.base_lr));
  base.warmup_epochs = flags.get_double("base_warmup", d.base_warmup);

  train::RunConfig run;
  run.batch_size = flags.get_int("batch", base.batch_size);
  run.epochs = flags.get_int("epochs", d.epochs);
  run.optimizer = flags.get_string("optimizer", d.optimizer);
  run.weight_decay =
      static_cast<float>(flags.get_double("weight_decay", d.weight_decay));
  run.seed = static_cast<u64>(flags.get_int("seed", 1));
  run.verbose = !flags.get_bool("quiet", false);

  const auto recipe = sched::legw_scale(base, run.batch_size);
  std::printf("app %s | batch %lld (k=%.1f) | %s | LEGW: peak LR %.4f, "
              "warmup %.4f epochs\n",
              app.c_str(), static_cast<long long>(run.batch_size),
              recipe.scale_factor, run.optimizer.c_str(), recipe.peak_lr,
              recipe.warmup_epochs);

  if (app == "mnist") {
    data::SyntheticMnist dataset(2048, 512, 42);
    models::MnistLstmConfig model;
    model.transform_dim = 32;
    model.hidden_dim = 32;
    auto schedule = sched::legw_constant(base, run.batch_size);
    run.schedule = schedule.get();
    print_result(train::train_mnist(dataset, model, run), "test accuracy");
  } else if (app == "ptb") {
    data::CorpusConfig ccfg;
    ccfg.vocab = 200;
    ccfg.n_states = 10;
    ccfg.n_train_tokens = 36000;
    ccfg.n_valid_tokens = 3000;
    data::SyntheticCorpus corpus(ccfg);
    models::PtbConfig model = models::PtbConfig::small(200);
    model.embed_dim = 48;
    model.hidden_dim = 48;
    model.bptt_len = 10;
    auto schedule = sched::legw_schedule(base, run.batch_size, [&](float peak) {
      return std::make_shared<sched::ExponentialEpochDecay>(peak, 4.0, 0.6f);
    });
    run.schedule = schedule.get();
    print_result(train::train_ptb(corpus, model, run), "valid perplexity");
  } else if (app == "gnmt") {
    data::TranslationConfig tcfg;
    tcfg.src_vocab = 60;
    tcfg.tgt_vocab = 60;
    tcfg.min_len = 3;
    tcfg.max_len = 7;
    tcfg.n_train = 1024;
    tcfg.n_test = 128;
    data::SyntheticTranslation dataset(tcfg);
    models::GnmtConfig model;
    model.src_vocab = 60;
    model.tgt_vocab = 60;
    model.embed_dim = 16;
    model.hidden_dim = 16;
    model.num_layers = 2;
    auto schedule = sched::legw_constant(base, run.batch_size);
    run.schedule = schedule.get();
    print_result(train::train_gnmt(dataset, model, run), "test BLEU");
  } else {  // resnet
    data::SyntheticImages dataset(3072, 512, 42);
    models::ResNetConfig model;
    model.width = 8;
    model.blocks_per_stage = 1;
    auto schedule = sched::legw_schedule(base, run.batch_size, [&](float peak) {
      return std::make_shared<sched::PolynomialLr>(
          peak, static_cast<double>(run.epochs), 2.0f);
    });
    run.schedule = schedule.get();
    print_result(train::train_resnet(dataset, model, run), "test accuracy");
  }
  return 0;
}
