// Language modelling with the PTB-style two-layer LSTM, driven directly
// through the library API (no train::runners) so the example shows the full
// training loop a downstream user would write: BPTT batching, carried state,
// schedule queries, clipping, and perplexity evaluation.
//
// Run: ./build/examples/language_model [batch_size]
#include <cstdio>
#include <cstdlib>

#include "data/corpus.hpp"
#include "models/ptb_model.hpp"
#include "optim/optimizer.hpp"
#include "sched/legw.hpp"
#include "train/metrics.hpp"

using namespace legw;

int main(int argc, char** argv) {
  const i64 batch = argc > 1 ? std::atoll(argv[1]) : 16;
  std::printf("PTB-style LSTM language model, batch %lld\n\n",
              static_cast<long long>(batch));

  // Synthetic HMM corpus (PTB stand-in; vocabulary 200).
  data::CorpusConfig ccfg;
  ccfg.vocab = 200;
  ccfg.n_states = 10;
  ccfg.n_train_tokens = 24000;
  ccfg.n_valid_tokens = 3000;
  data::SyntheticCorpus corpus(ccfg);

  models::PtbConfig mcfg = models::PtbConfig::small(corpus.vocab());
  mcfg.embed_dim = 48;
  mcfg.hidden_dim = 48;
  mcfg.bptt_len = 10;
  models::PtbModel model(mcfg);
  std::printf("model: %lld parameters\n",
              static_cast<long long>(model.num_parameters()));

  // LEGW from the batch-8 baseline; exponential decay after a flat phase
  // (the paper's PTB-small recipe).
  const sched::LegwBaseline baseline{8, 0.5f, 0.2};
  auto schedule = sched::legw_schedule(baseline, batch, [](float peak) {
    return std::make_shared<sched::ExponentialEpochDecay>(peak, 2.0, 0.6f);
  });
  const auto recipe = sched::legw_scale(baseline, batch);
  std::printf("LEGW: peak LR %.4f, warmup %.3f epochs (%s)\n\n",
              recipe.peak_lr, recipe.warmup_epochs,
              schedule->describe().c_str());

  auto opt = optim::make_optimizer("momentum", model.parameters());
  data::BpttBatcher batcher(corpus.train_tokens(), batch, mcfg.bptt_len);
  core::Rng dropout_rng(1);

  const i64 epochs = 8;
  auto carried = model.zero_carried(batch);
  i64 step = 0;
  for (i64 epoch = 0; epoch < epochs; ++epoch) {
    double epoch_loss = 0.0;
    for (i64 s = 0; s < batcher.chunks_per_epoch(); ++s, ++step) {
      const double frac_epoch =
          static_cast<double>(step) / batcher.chunks_per_epoch();
      opt->set_lr(schedule->lr(frac_epoch));

      auto chunk = batcher.next_chunk();
      if (chunk.first_in_epoch) carried = model.zero_carried(batch);
      model.zero_grad();
      auto out = model.chunk_loss(chunk.inputs, chunk.targets, batch,
                                  mcfg.bptt_len, carried, dropout_rng);
      carried = std::move(out.carried);
      epoch_loss += out.loss.value()[0];
      ag::backward(out.loss);
      optim::clip_grad_norm(opt->params(), 5.0f);
      opt->step();
    }
    const double valid_ppl =
        train::perplexity(model.evaluate_nll(corpus.valid_tokens(), 10,
                                             mcfg.bptt_len));
    std::printf("epoch %lld: train loss %.4f, valid perplexity %.2f\n",
                static_cast<long long>(epoch + 1),
                epoch_loss / batcher.chunks_per_epoch(), valid_ppl);
  }
  std::printf("\n(uniform-model perplexity would be %d; the LSTM exploits the\n"
              "corpus's latent-state structure)\n", 200);
  return 0;
}
