// LR range test on the MNIST-LSTM: the one probe LEGW still needs a human
// for is the *baseline* peak LR — this finds it automatically, then verifies
// the suggestion by training with it.
//
// Run: ./build/examples/lr_finder [--min_lr 1e-4] [--max_lr 10] [--steps 40]
#include <cstdio>

#include "analysis/lr_finder.hpp"
#include "core/flags.hpp"
#include "data/images.hpp"
#include "data/synthetic_mnist.hpp"
#include "models/mnist_lstm.hpp"
#include "optim/optimizer.hpp"
#include "sched/legw.hpp"
#include "train/runners.hpp"

using namespace legw;

int main(int argc, char** argv) {
  core::Flags flags(argc, argv);
  analysis::LrFinderConfig cfg;
  cfg.min_lr = static_cast<float>(flags.get_double("min_lr", 1e-4));
  cfg.max_lr = static_cast<float>(flags.get_double("max_lr", 4.0));
  cfg.n_steps = static_cast<int>(flags.get_int("steps", 40));
  cfg.blowup_factor = 2.5;

  std::printf("LR range test: %d steps, %.1e -> %.1e\n\n", cfg.n_steps,
              static_cast<double>(cfg.min_lr),
              static_cast<double>(cfg.max_lr));

  data::SyntheticMnist dataset(1024, 256, 42);
  models::MnistLstmConfig mcfg;
  mcfg.transform_dim = 24;
  mcfg.hidden_dim = 24;
  models::MnistLstm model(mcfg);
  auto opt = optim::make_optimizer("momentum", model.parameters());
  data::IndexBatcher batcher(dataset.n_train(), 128, 3);  // big batch: smooth trace

  auto step_fn = [&](float lr) {
    opt->set_lr(lr);
    std::vector<i64> idx = batcher.next();
    model.zero_grad();
    ag::Variable loss = model.loss(dataset.gather_images(idx, true),
                                   dataset.gather_labels(idx, true));
    const double value = loss.value()[0];
    ag::backward(loss);
    // No gradient clipping here: the range test must be allowed to blow up —
    // that is the signal it is looking for.
    opt->step();
    return value;
  };
  auto result = analysis::lr_range_test(cfg, step_fn);

  std::printf("%10s %10s %10s\n", "lr", "loss", "smoothed");
  for (std::size_t i = 0; i < result.trace.size(); i += 2) {
    const auto& p = result.trace[i];
    std::printf("%10.5f %10.4f %10.4f\n", static_cast<double>(p.lr), p.loss,
                p.smoothed_loss);
  }
  std::printf("\n%s at the end of the ramp; suggested baseline LR: %.4f\n\n",
              result.blew_up ? "blow-up detected" : "no blow-up",
              static_cast<double>(result.suggested_lr));

  // Validate: train a fresh model with the suggestion as the LEGW baseline.
  sched::LegwBaseline base{32, result.suggested_lr, 0.1};
  auto schedule = sched::legw_constant(base, 32);
  train::RunConfig run;
  run.batch_size = 32;
  run.epochs = 4;
  run.optimizer = "momentum";
  run.schedule = schedule.get();
  run.final_eval_only = true;
  auto r = train::train_mnist(dataset, mcfg, run);
  std::printf("training at the suggested LR: final test accuracy %.4f (%s)\n",
              r.final_metric, r.diverged ? "DIVERGED" : "stable");
  return 0;
}
