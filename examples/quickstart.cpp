// Quickstart: scale the batch size of an LSTM classifier with LEGW.
//
// Demonstrates the library's core loop in ~60 lines:
//   1. tune (or accept) a small-batch baseline,
//   2. derive the large-batch schedule with legw_scale / legw_constant —
//      no extra tuning,
//   3. train and compare.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart
#include <cstdio>

#include "data/synthetic_mnist.hpp"
#include "models/mnist_lstm.hpp"
#include "sched/legw.hpp"
#include "train/runners.hpp"

using namespace legw;

int main() {
  std::printf("LEGW quickstart: MNIST-LSTM, batch 32 -> 256 with zero retuning\n\n");

  // Synthetic MNIST stand-in (procedural, deterministic; see DESIGN.md).
  data::SyntheticMnist dataset(/*n_train=*/2048, /*n_test=*/512, /*seed=*/42);

  models::MnistLstmConfig model;
  model.transform_dim = 32;
  model.hidden_dim = 32;

  // The tuned baseline: batch 32, peak LR 0.1, 0.2 warmup epochs.
  const sched::LegwBaseline baseline{32, 0.1f, 0.1};

  for (i64 batch : {i64{32}, i64{256}}) {
    // LEGW derives the whole schedule from the baseline: peak LR follows
    // the sqrt rule, warmup length the linear-epoch rule.
    const sched::LegwRecipe recipe = sched::legw_scale(baseline, batch);
    auto schedule = sched::legw_constant(baseline, batch);

    std::printf("batch %4lld: k=%.0f, peak LR %.4f, warmup %.2f epochs\n",
                static_cast<long long>(batch), recipe.scale_factor,
                recipe.peak_lr, recipe.warmup_epochs);

    train::RunConfig run;
    run.batch_size = batch;
    run.epochs = 10;
    run.optimizer = "momentum";
    run.schedule = schedule.get();
    run.verbose = true;

    auto result = train::train_mnist(dataset, model, run);
    std::printf("  -> final test accuracy %.4f (%.1fs, %lld steps)\n\n",
                result.final_metric, result.wall_seconds,
                static_cast<long long>(result.steps));
  }

  std::printf("Both batch sizes reach comparable accuracy — that is LEGW's\n"
              "claim: large-batch training without per-batch-size tuning.\n");
  return 0;
}
