// Synchronous data-parallel training with LEGW: R thread-replicas train the
// MNIST-LSTM on shards of a global batch, gradients flow through the
// deterministic tree all-reduce, and every replica applies the identical
// update — the execution model behind the paper's TPU-pod runs, in miniature.
//
// Run: ./build/examples/data_parallel [--replicas 4] [--global_batch 128]
#include <cstdio>

#include "core/flags.hpp"
#include "data/images.hpp"
#include "data/synthetic_mnist.hpp"
#include "dist/data_parallel.hpp"
#include "models/mnist_lstm.hpp"
#include "optim/optimizer.hpp"
#include "sched/legw.hpp"

using namespace legw;

int main(int argc, char** argv) {
  core::Flags flags(argc, argv);
  const int n_replicas = static_cast<int>(flags.get_int("replicas", 4));
  const i64 global_batch = flags.get_int("global_batch", 128);
  LEGW_CHECK(global_batch % n_replicas == 0,
             "global batch must divide evenly across replicas");
  const i64 shard = global_batch / n_replicas;

  std::printf("data-parallel MNIST-LSTM: %d replicas x shard %lld = batch %lld\n\n",
              n_replicas, static_cast<long long>(shard),
              static_cast<long long>(global_batch));

  data::SyntheticMnist dataset(2048, 512, 42);
  models::MnistLstmConfig mcfg;
  mcfg.transform_dim = 32;
  mcfg.hidden_dim = 32;

  // Identical replicas (same config seed -> same init).
  std::vector<std::unique_ptr<models::MnistLstm>> replicas;
  std::vector<std::vector<ag::Variable>> params;
  std::vector<std::unique_ptr<optim::Optimizer>> opts;
  for (int r = 0; r < n_replicas; ++r) {
    replicas.push_back(std::make_unique<models::MnistLstm>(mcfg));
    params.push_back(replicas.back()->parameters());
    opts.push_back(optim::make_optimizer("momentum", params.back()));
  }

  // LEGW schedule for the *global* batch.
  const sched::LegwBaseline baseline{32, 0.1f, 0.1};
  auto schedule = sched::legw_constant(baseline, global_batch);
  const auto recipe = sched::legw_scale(baseline, global_batch);
  std::printf("LEGW: peak LR %.4f, warmup %.3f epochs\n\n", recipe.peak_lr,
              recipe.warmup_epochs);

  data::IndexBatcher batcher(dataset.n_train(), global_batch, 5);
  const i64 steps_per_epoch = batcher.batches_per_epoch();
  const i64 epochs = 6;
  for (i64 epoch = 0; epoch < epochs; ++epoch) {
    float mean_loss = 0.0f;
    for (i64 s = 0; s < steps_per_epoch; ++s) {
      const double frac =
          static_cast<double>(epoch * steps_per_epoch + s) / steps_per_epoch;
      const float lr = schedule->lr(frac);
      std::vector<i64> idx = batcher.next();
      mean_loss = dist::synchronous_backward(params, [&](int r) {
        std::vector<i64> slice(idx.begin() + r * shard,
                               idx.begin() + (r + 1) * shard);
        return replicas[static_cast<std::size_t>(r)]->loss(
            dataset.gather_images(slice, true),
            dataset.gather_labels(slice, true));
      });
      for (auto& opt : opts) {
        opt->set_lr(lr);
        opt->step();
      }
    }
    // All replicas are identical, so evaluate replica 0.
    const i64 divergent = dist::first_divergent_param(params);
    std::vector<i64> test_idx;
    for (i64 i = 0; i < 256; ++i) test_idx.push_back(i);
    const double acc =
        replicas[0]->accuracy(dataset.gather_images(test_idx, false),
                              dataset.gather_labels(test_idx, false));
    std::printf("epoch %lld: loss %.4f, test acc %.4f, replicas %s\n",
                static_cast<long long>(epoch + 1), mean_loss, acc,
                divergent == -1 ? "in sync" : "DIVERGED");
  }
  return 0;
}
