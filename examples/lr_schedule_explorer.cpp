// LR-schedule explorer: prints any of the library's schedules — including
// full LEGW compositions — as a CSV trace, ready for plotting.
//
// Run: ./build/examples/lr_schedule_explorer <kind> [args...]
//   constant   <peak>
//   multistep  <peak> <gamma> <milestone>...
//   exp        <peak> <flat_epochs> <gamma>
//   poly       <peak> <total_epochs> <power>
//   legw       <base_batch> <base_lr> <base_warmup> <target_batch> <total_epochs>
// Examples:
//   lr_schedule_explorer legw 1024 5.657 0.3125 32768 90
//   lr_schedule_explorer multistep 5.657 0.1 30 60 80
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "sched/legw.hpp"
#include "sched/schedule.hpp"

using namespace legw;

namespace {

void usage() {
  std::printf(
      "usage: lr_schedule_explorer <constant|multistep|exp|poly|legw> [args]\n"
      "  constant  <peak>\n"
      "  multistep <peak> <gamma> <milestone>...\n"
      "  exp       <peak> <flat_epochs> <gamma>\n"
      "  poly      <peak> <total_epochs> <power>\n"
      "  legw      <base_batch> <base_lr> <base_warmup_ep> <target_batch> <total_ep>\n");
}

void trace(const sched::LrSchedule& s, double total_epochs) {
  std::printf("# %s\nepoch,lr\n", s.describe().c_str());
  const int points = 200;
  for (int i = 0; i <= points; ++i) {
    const double e = total_epochs * i / points;
    std::printf("%.4f,%.6f\n", e, static_cast<double>(s.lr(e)));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    usage();
    return 1;
  }
  const std::string kind = argv[1];
  if (kind == "constant") {
    sched::ConstantLr s(std::strtof(argv[2], nullptr));
    trace(s, 10.0);
  } else if (kind == "multistep" && argc >= 5) {
    std::vector<double> milestones;
    for (int i = 4; i < argc; ++i) milestones.push_back(std::strtod(argv[i], nullptr));
    sched::MultiStepLr s(std::strtof(argv[2], nullptr), milestones,
                         std::strtof(argv[3], nullptr));
    trace(s, milestones.back() * 1.2);
  } else if (kind == "exp" && argc >= 5) {
    sched::ExponentialEpochDecay s(std::strtof(argv[2], nullptr),
                                   std::strtod(argv[3], nullptr),
                                   std::strtof(argv[4], nullptr));
    trace(s, std::strtod(argv[3], nullptr) * 3.0);
  } else if (kind == "poly" && argc >= 5) {
    const double total = std::strtod(argv[3], nullptr);
    sched::PolynomialLr s(std::strtof(argv[2], nullptr), total,
                          std::strtof(argv[4], nullptr));
    trace(s, total);
  } else if (kind == "legw" && argc >= 7) {
    sched::LegwBaseline base;
    base.batch_size = std::atoll(argv[2]);
    base.peak_lr = std::strtof(argv[3], nullptr);
    base.warmup_epochs = std::strtod(argv[4], nullptr);
    const i64 target = std::atoll(argv[5]);
    const double total = std::strtod(argv[6], nullptr);
    auto s = sched::legw_schedule(base, target, [&](float peak) {
      return std::make_shared<sched::PolynomialLr>(peak, total, 2.0f);
    });
    const auto recipe = sched::legw_scale(base, target);
    std::printf("# LEGW: k=%.2f peak=%.4f warmup=%.4f epochs\n",
                recipe.scale_factor, recipe.peak_lr, recipe.warmup_epochs);
    trace(*s, total);
  } else {
    usage();
    return 1;
  }
  return 0;
}
