#!/usr/bin/env python3
"""Repo-specific lint rules the compiler cannot enforce.

Run from the repo root (the `lint` CMake target does):

    python3 tools/lint.py             # check, exit 1 on findings
    python3 tools/lint.py --list      # print the rules and exit
    python3 tools/lint.py --self-test # plant violations in a scratch tree,
                                      # assert the rules catch them and the
                                      # real tree stays clean

Rules:

  raw-thread      std::thread may only be constructed inside
                  src/core/thread_pool.* — everything else goes through the
                  ThreadPool so the tracer sees it and shutdown joins it.
  unseeded-rng    rand()/srand()/std::random_device are banned everywhere:
                  the determinism contract (tests/test_determinism_golden)
                  requires every random stream to flow from core::Rng with
                  an explicit seed. core/rng.* is the one sanctioned home.
  iostream-core   <iostream> is banned in src/core/: its static init and
                  sync-with-stdio cost land in every binary, and the hot
                  paths log through printf-style tracing instead.
  bench-trace     every bench/*.cpp must accept --trace, either by
                  constructing bench_common.hpp's ScopedTrace or by parsing
                  the flag itself — untraceable benches are unprofilable.
  atomic-write    non-append fopen()/std::ofstream writes in src/ must go
                  through core::AtomicFile / core::atomic_write_file
                  (src/core/io.* is the sanctioned home): a direct write
                  torn by a crash corrupts the run artifact it replaces.
                  Read-mode opens ("r"/"rb") and append journals ("a") are
                  exempt.
  serve-no-tape   src/serve/ is the tape-free inference path: it may not
                  include ag/ or nn/ headers, nor ckpt/checkpoint.hpp (which
                  restores into live nn::Module state) — ckpt/crc32.hpp is
                  header-only and stays allowed. `ag::` / `nn::` tokens in
                  code are banned (comments may reference them), and
                  src/serve/CMakeLists.txt may not link legw_ag, legw_nn, or
                  legw_ckpt. This makes the "serving never touches the
                  autograd tape" guarantee a build-time property instead of
                  a code-review hope.
  raw-mutex       std::mutex / lock_guard / unique_lock / scoped_lock /
                  condition_variable / call_once are banned in src/ outside
                  core/thread_annotations.hpp and core/mutex.hpp: every lock
                  goes through core::Mutex / core::MutexLock / core::CondVar
                  so the Clang thread-safety analysis (`analyze` preset) sees
                  the whole protocol. Comments may name the std types.
  discarded-status status-returning I/O calls (AtomicFile::commit,
                  core::atomic_write_file, ckpt save/load/load_image/
                  maybe_save/save_now/bless) may not appear as bare
                  expression statements in src/: a dropped Status turns a
                  failed write into silent corruption discovered steps
                  later. Assign it, branch on it, or discard explicitly
                  with `(void)` plus a comment. Backs up the
                  [[nodiscard]] attributes for builds that don't promote
                  the warning to an error.

A finding can be waived where the rule's intent is genuinely inapplicable by
putting `lint-allow: <rule>` in a comment on the offending line or one of
the three lines above it, with a justification.
"""

from __future__ import annotations

import re
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

SOURCE_DIRS = ("src", "bench", "examples", "tests", "tools")
CPP_SUFFIXES = {".cpp", ".hpp", ".h", ".cc"}

ALLOW_RE = re.compile(r"lint-allow:\s*([\w-]+)")

# (rule, regex) pairs scanned per line. The regexes deliberately match
# constructions/usages, not the tokens inside strings-free C++ well enough
# for this codebase (no generated code, no macros hiding threads).
RAW_THREAD_RE = re.compile(r"\bstd::thread\b(?!::hardware_concurrency)")
UNSEEDED_RNG_RE = re.compile(r"\b(?:s?rand\s*\(|std::random_device\b)")
IOSTREAM_RE = re.compile(r'#\s*include\s*[<"]iostream[>"]')
TRACE_RE = re.compile(r"ScopedTrace|--trace")
# Write-mode opens: fopen(..., "w"/"wb"/"w+") and ofstream construction.
# Append mode ("a") is exempt — the telemetry journal appends records and a
# torn tail line is detected by its reader; truncate-then-write is the
# dangerous shape.
FOPEN_WRITE_RE = re.compile(r'\bfopen\s*\([^;]*,\s*"w[b+]?"\s*\)')
OFSTREAM_RE = re.compile(r"\bstd::ofstream\b")
# serve-no-tape: headers that drag the tape/training stack into serving.
# ckpt/crc32.hpp is the one sanctioned ckpt include (header-only, no link).
SERVE_INCLUDE_RE = re.compile(r'#\s*include\s*"(?:ag/|nn/|ckpt/checkpoint)')
# Token usage is checked on comment-stripped text so doc comments may still
# say "mirrors ag::add_bias" without tripping the rule.
SERVE_TOKEN_RE = re.compile(r"\b(?:ag|nn)::")
SERVE_LINK_RE = re.compile(r"\blegw_(?:ag|nn|ckpt)\b")
# raw-mutex: the std locking vocabulary, checked on comment-stripped text so
# docs may still say "the std::lock_guard replacement". The annotated
# wrappers themselves (core/mutex.hpp, core/thread_annotations.hpp) are the
# sanctioned home.
RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable(?:_any)?|call_once|once_flag)\b")
RAW_MUTEX_EXEMPT = ("src/core/mutex.hpp", "src/core/thread_annotations.hpp")
# discarded-status: a Status/Result-returning I/O call as a bare expression
# statement. Anchoring at the start of the (comment-stripped) line means
# assignments (`auto r = f.commit();`), explicit discards (`(void)x.save(...)`)
# and branches (`if (x.commit() ...)`) never match — only the
# fire-and-forget shape does (a statement-start check filters continuation
# lines of multi-line assignments). Checked in src/ where a dropped write
# error silently corrupts run artifacts. `load` is special-cased to
# namespace-qualified/free calls only, so std::atomic's `x.load(...)`
# member never matches.
DISCARDED_STATUS_RE = re.compile(
    r"^\s*(?:[A-Za-z_]\w*\s*(?:\.|->|::)\s*)*"
    r"(?:commit|atomic_write_file|save|load_image|maybe_save|save_now|"
    r"bless)\s*\(")
DISCARDED_LOAD_RE = re.compile(r"^\s*(?:[A-Za-z_]\w*::\s*)*load\s*\(")


def allowed(lines: list[str], idx: int, rule: str) -> bool:
    for back in range(max(0, idx - 3), idx + 1):
        m = ALLOW_RE.search(lines[back])
        if m and m.group(1) == rule:
            return True
    return False


def strip_line_comment(line: str, marker: str) -> str:
    pos = line.find(marker)
    return line if pos < 0 else line[:pos]


def statement_start(lines: list[str], idx: int) -> bool:
    """True when line idx begins a new statement: the previous substantive
    line ended one (`;`, `{`, `}`). Filters continuation lines such as the
    value half of a multi-line assignment."""
    for back in range(idx - 1, -1, -1):
        prev = strip_line_comment(lines[back], "//").strip()
        if not prev or prev.startswith("#") or prev.startswith("*") \
                or prev.startswith("/*") or prev.endswith("*/"):
            continue
        return prev[-1] in ";{}"
    return True


def iter_sources(root: Path) -> list[Path]:
    out = []
    for d in SOURCE_DIRS:
        sub = root / d
        if sub.is_dir():
            out.extend(p for p in sorted(sub.rglob("*"))
                       if p.suffix in CPP_SUFFIXES)
    return out


def lint(root: Path = REPO) -> list[str]:
    findings: list[str] = []

    def report(path: Path, lineno: int, rule: str, msg: str) -> None:
        rel = path.relative_to(root)
        findings.append(f"{rel}:{lineno}: [{rule}] {msg}")

    for path in iter_sources(root):
        rel = path.relative_to(root).as_posix()
        lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
        in_thread_pool = rel.startswith("src/core/thread_pool")
        in_rng = rel.startswith("src/core/rng")
        is_lint_py_peer = rel.startswith("tools/")
        in_serve = rel.startswith("src/serve/")
        for i, line in enumerate(lines):
            lineno = i + 1
            if not in_thread_pool and RAW_THREAD_RE.search(line):
                if not allowed(lines, i, "raw-thread"):
                    report(path, lineno, "raw-thread",
                           "raw std::thread outside core/thread_pool; "
                           "use core::ThreadPool")
            if not in_rng and not is_lint_py_peer and UNSEEDED_RNG_RE.search(line):
                if not allowed(lines, i, "unseeded-rng"):
                    report(path, lineno, "unseeded-rng",
                           "unseeded RNG; use core::Rng with an explicit seed")
            if rel.startswith("src/core/") and IOSTREAM_RE.search(line):
                if not allowed(lines, i, "iostream-core"):
                    report(path, lineno, "iostream-core",
                           "<iostream> in core/ hot-path code; use cstdio")
            if (rel.startswith("src/") and not rel.startswith("src/core/io.")
                    and (FOPEN_WRITE_RE.search(line)
                         or OFSTREAM_RE.search(line))):
                if not allowed(lines, i, "atomic-write"):
                    report(path, lineno, "atomic-write",
                           "direct write-mode open in src/; publish run "
                           "artifacts via core::AtomicFile / "
                           "core::atomic_write_file")
            if (rel.startswith("src/") and rel not in RAW_MUTEX_EXEMPT
                    and RAW_MUTEX_RE.search(strip_line_comment(line, "//"))):
                if not allowed(lines, i, "raw-mutex"):
                    report(path, lineno, "raw-mutex",
                           "raw std mutex/lock in src/; use core::Mutex / "
                           "core::MutexLock / core::CondVar (core/mutex.hpp) "
                           "so the thread-safety analysis sees the lock")
            code = strip_line_comment(line, "//")
            if (rel.startswith("src/")
                    and (DISCARDED_STATUS_RE.search(code)
                         or DISCARDED_LOAD_RE.search(code))
                    and statement_start(lines, i)):
                if not allowed(lines, i, "discarded-status"):
                    report(path, lineno, "discarded-status",
                           "status-returning I/O call discarded; assign or "
                           "branch on the result, or discard explicitly "
                           "with (void) and a justification")
            if in_serve:
                if SERVE_INCLUDE_RE.search(line):
                    if not allowed(lines, i, "serve-no-tape"):
                        report(path, lineno, "serve-no-tape",
                               "src/serve/ must stay tape-free: no ag/, nn/, "
                               "or ckpt/checkpoint includes "
                               "(ckpt/crc32.hpp is the allowed exception)")
                elif SERVE_TOKEN_RE.search(strip_line_comment(line, "//")):
                    if not allowed(lines, i, "serve-no-tape"):
                        report(path, lineno, "serve-no-tape",
                               "src/serve/ must stay tape-free: ag:: / nn:: "
                               "usage is banned on the inference path")

    bench_dir = root / "bench"
    if bench_dir.is_dir():
        for path in sorted(bench_dir.glob("*.cpp")):
            text = path.read_text(encoding="utf-8", errors="replace")
            if not TRACE_RE.search(text):
                report(path, 1, "bench-trace",
                       "bench binary does not accept --trace "
                       "(construct bench_common.hpp's ScopedTrace in main)")

    # The no-tape link contract lives in the build file, not a C++ source, so
    # scan it specially (comments after `#` may still name the banned libs).
    serve_cmake = root / "src" / "serve" / "CMakeLists.txt"
    if serve_cmake.is_file():
        lines = serve_cmake.read_text(encoding="utf-8",
                                      errors="replace").splitlines()
        for i, line in enumerate(lines):
            if SERVE_LINK_RE.search(strip_line_comment(line, "#")):
                if not allowed(lines, i, "serve-no-tape"):
                    report(serve_cmake, i + 1, "serve-no-tape",
                           "legw_serve may link only legw_core, legw_mem, "
                           "and legw_obs; legw_ag/legw_nn/legw_ckpt pull "
                           "the tape into serving")

    return findings


def self_test() -> int:
    """Seeded-violation check for EVERY rule: each must fire on a planted bad
    tree, respect its waiver/exemption edges on a planted clean tree, and the
    real repo must be clean. Exits 0 on success, 1 with diagnostics on any
    miss."""
    failures: list[str] = []

    def expect(cond: bool, msg: str) -> None:
        if not cond:
            failures.append(msg)

    with tempfile.TemporaryDirectory(prefix="legw-lint-selftest-") as tmp:
        bad = Path(tmp) / "bad"
        for sub in ("src/serve", "src/core", "src/train", "bench"):
            (bad / sub).mkdir(parents=True)

        # serve-no-tape -------------------------------------------------------
        (bad / "src" / "serve" / "bad.cpp").write_text(
            '#include "ag/ops.hpp"\n'                      # line 1: fires
            '#include "nn/module.hpp"\n'                   # line 2: fires
            '#include "ckpt/checkpoint.hpp"\n'             # line 3: fires
            '#include "ckpt/crc32.hpp"\n'                  # line 4: allowed
            '// comment mentioning ag::add_bias is fine\n'  # line 5: quiet
            'void f() { auto v = ag::relu(nn::zeros()); }\n',  # line 6: fires
            encoding="utf-8")
        (bad / "src" / "serve" / "CMakeLists.txt").write_text(
            "# comment naming legw_ag is fine\n"
            "add_library(legw_serve bad.cpp)\n"
            "target_link_libraries(legw_serve PUBLIC legw_core legw_ag)\n",
            encoding="utf-8")
        # raw-thread / unseeded-rng / raw-mutex -------------------------------
        (bad / "src" / "train" / "bad_thread.cpp").write_text(
            '#include <thread>\n'
            'void spawn() { std::thread t([] {}); t.join(); }\n'   # fires
            'int noise() { return rand(); }\n'                     # fires
            '#include <mutex>\n'
            'std::mutex g_mu;\n'                                   # fires
            'void locked() { std::lock_guard<std::mutex> l(g_mu); }\n'  # fires
            '// a comment naming std::mutex is fine\n'             # quiet
            'std::condition_variable g_cv;\n',                     # fires
            encoding="utf-8")
        # iostream-core -------------------------------------------------------
        (bad / "src" / "core" / "bad_io.cpp").write_text(
            '#include <iostream>\n'                                # fires
            'void log() {}\n',
            encoding="utf-8")
        # atomic-write --------------------------------------------------------
        (bad / "src" / "train" / "bad_write.cpp").write_text(
            '#include <cstdio>\n'
            'void save() { std::FILE* f = fopen("out.bin", "wb"); '  # fires
            'if (f) fclose(f); }\n'
            'void journal() { std::FILE* f = fopen("log.txt", "a"); '  # quiet
            'if (f) fclose(f); }\n',
            encoding="utf-8")
        # bench-trace ---------------------------------------------------------
        (bad / "bench" / "bad_bench.cpp").write_text(
            'int main() { return 0; }\n',                          # fires
            encoding="utf-8")
        # discarded-status ----------------------------------------------------
        (bad / "src" / "train" / "bad_status.cpp").write_text(
            'void f(core::AtomicFile& af, ckpt::CheckpointManager& mgr) {\n'
            '  af.commit();\n'                                     # fires
            '  core::atomic_write_file("p", "x");\n'               # fires
            '  mgr.bless(3);\n'                                    # fires
            '  const auto r = af.commit();\n'                      # quiet
            '  (void)mgr.bless(4);\n'                              # quiet
            '  if (af.commit() == core::Status::kOk) {}\n'         # quiet
            '  // mgr.save_now(state); — commentary is fine\n'     # quiet
            '  std::atomic<int> a{0};\n'
            '  a.load();\n'                                        # quiet
            '  const auto img =\n'
            '      ckpt::load_image(s, image, "label");\n'         # quiet
            '  load(s, "p");\n'                                    # fires
            '}\n',
            encoding="utf-8")

        found = lint(bad)

        def fired(rule: str, at: str) -> bool:
            return any(f"[{rule}]" in f and at in f for f in found)

        expect(fired("serve-no-tape", "bad.cpp:1:"), "ag/ include not caught")
        expect(fired("serve-no-tape", "bad.cpp:2:"), "nn/ include not caught")
        expect(fired("serve-no-tape", "bad.cpp:3:"),
               "ckpt/checkpoint include not caught")
        expect(not fired("serve-no-tape", "bad.cpp:4:"),
               "ckpt/crc32.hpp wrongly flagged")
        expect(not fired("serve-no-tape", "bad.cpp:5:"),
               "comment-only ag:: wrongly flagged")
        expect(fired("serve-no-tape", "bad.cpp:6:"),
               "ag::/nn:: code token not caught")
        expect(fired("serve-no-tape", "CMakeLists.txt:3:"),
               "legw_ag link not caught")
        expect(not fired("serve-no-tape", "CMakeLists.txt:1:"),
               "CMake comment naming legw_ag wrongly flagged")
        expect(fired("raw-thread", "bad_thread.cpp:2:"),
               "raw std::thread not caught")
        expect(fired("unseeded-rng", "bad_thread.cpp:3:"),
               "rand() not caught")
        expect(fired("raw-mutex", "bad_thread.cpp:5:"),
               "std::mutex declaration not caught")
        expect(fired("raw-mutex", "bad_thread.cpp:6:"),
               "std::lock_guard not caught")
        expect(not fired("raw-mutex", "bad_thread.cpp:7:"),
               "comment-only std::mutex wrongly flagged")
        expect(fired("raw-mutex", "bad_thread.cpp:8:"),
               "std::condition_variable not caught")
        expect(fired("iostream-core", "bad_io.cpp:1:"),
               "<iostream> in core/ not caught")
        expect(fired("atomic-write", "bad_write.cpp:2:"),
               'fopen "wb" not caught')
        expect(not fired("atomic-write", "bad_write.cpp:3:"),
               'append-mode fopen "a" wrongly flagged')
        expect(fired("bench-trace", "bad_bench.cpp:1:"),
               "bench without --trace not caught")
        expect(fired("discarded-status", "bad_status.cpp:2:"),
               "discarded AtomicFile::commit not caught")
        expect(fired("discarded-status", "bad_status.cpp:3:"),
               "discarded atomic_write_file not caught")
        expect(fired("discarded-status", "bad_status.cpp:4:"),
               "discarded bless not caught")
        expect(not fired("discarded-status", "bad_status.cpp:5:"),
               "assigned commit wrongly flagged")
        expect(not fired("discarded-status", "bad_status.cpp:6:"),
               "(void) discard wrongly flagged")
        expect(not fired("discarded-status", "bad_status.cpp:7:"),
               "branched-on commit wrongly flagged")
        expect(not fired("discarded-status", "bad_status.cpp:8:"),
               "comment-only save_now wrongly flagged")
        expect(not fired("discarded-status", "bad_status.cpp:10:"),
               "std::atomic load() member wrongly flagged")
        expect(not fired("discarded-status", "bad_status.cpp:12:"),
               "multi-line assignment continuation wrongly flagged")
        expect(fired("discarded-status", "bad_status.cpp:13:"),
               "discarded free ckpt load not caught")

        # Clean tree: waivers and sanctioned homes must stay quiet -----------
        clean = Path(tmp) / "clean"
        for sub in ("src/serve", "src/core", "src/train", "bench"):
            (clean / sub).mkdir(parents=True)
        (clean / "src" / "serve" / "good.cpp").write_text(
            '#include "ckpt/crc32.hpp"\n'
            '#include "core/tensor.hpp"\n'
            '// replicates ag::lstm_cell forward without the tape\n'
            'void g() { (void)legw::ckpt::crc32(nullptr, 0); }\n',
            encoding="utf-8")
        (clean / "src" / "serve" / "CMakeLists.txt").write_text(
            "add_library(legw_serve good.cpp)\n"
            "target_link_libraries(legw_serve PUBLIC legw_core legw_mem "
            "legw_obs)\n",
            encoding="utf-8")
        # The sanctioned homes for std::mutex / std::thread, plus explicit
        # waivers; none of these may fire.
        (clean / "src" / "core" / "mutex.hpp").write_text(
            '#include <mutex>\n'
            'class Mutex { std::mutex mu_; };\n',
            encoding="utf-8")
        (clean / "src" / "core" / "thread_pool.cpp").write_text(
            '#include <thread>\n'
            'void pool() { std::thread t([] {}); t.join(); }\n',
            encoding="utf-8")
        (clean / "src" / "train" / "waived.cpp").write_text(
            '// lint-allow: raw-thread — dedicated watchdog, joined at exit\n'
            'void w() { std::thread t([] {}); t.join(); }\n'
            '// lint-allow: raw-mutex — interop with a C library callback\n'
            'std::mutex g_interop_mu;\n'
            '// lint-allow: discarded-status — best-effort cleanup on exit\n'
            'void bye(core::AtomicFile& af) { af.commit(); }\n',
            encoding="utf-8")
        (clean / "bench" / "good_bench.cpp").write_text(
            '#include "bench_common.hpp"\n'
            'int main(int argc, char** argv) {\n'
            '  bench::ScopedTrace trace(argc, argv);\n'
            '  return 0;\n'
            '}\n',
            encoding="utf-8")
        stray = lint(clean)
        expect(not stray, f"clean tree flagged: {stray}")

    real = lint(REPO)
    expect(not real, f"real tree has findings: {real}")

    if failures:
        for msg in failures:
            print(f"lint --self-test: FAIL: {msg}", file=sys.stderr)
        return 1
    print("lint --self-test: ok")
    return 0


def main(argv: list[str]) -> int:
    if "--list" in argv:
        print(__doc__)
        return 0
    if "--self-test" in argv:
        return self_test()
    findings = lint()
    for f in findings:
        print(f)
    if findings:
        print(f"lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
