#!/usr/bin/env python3
"""Repo-specific lint rules the compiler cannot enforce.

Run from the repo root (the `lint` CMake target does):

    python3 tools/lint.py             # check, exit 1 on findings
    python3 tools/lint.py --list      # print the rules and exit
    python3 tools/lint.py --self-test # plant violations in a scratch tree,
                                      # assert the rules catch them and the
                                      # real tree stays clean

Rules:

  raw-thread      std::thread may only be constructed inside
                  src/core/thread_pool.* — everything else goes through the
                  ThreadPool so the tracer sees it and shutdown joins it.
  unseeded-rng    rand()/srand()/std::random_device are banned everywhere:
                  the determinism contract (tests/test_determinism_golden)
                  requires every random stream to flow from core::Rng with
                  an explicit seed. core/rng.* is the one sanctioned home.
  iostream-core   <iostream> is banned in src/core/: its static init and
                  sync-with-stdio cost land in every binary, and the hot
                  paths log through printf-style tracing instead.
  bench-trace     every bench/*.cpp must accept --trace, either by
                  constructing bench_common.hpp's ScopedTrace or by parsing
                  the flag itself — untraceable benches are unprofilable.
  atomic-write    non-append fopen()/std::ofstream writes in src/ must go
                  through core::AtomicFile / core::atomic_write_file
                  (src/core/io.* is the sanctioned home): a direct write
                  torn by a crash corrupts the run artifact it replaces.
                  Read-mode opens ("r"/"rb") and append journals ("a") are
                  exempt.
  serve-no-tape   src/serve/ is the tape-free inference path: it may not
                  include ag/ or nn/ headers, nor ckpt/checkpoint.hpp (which
                  restores into live nn::Module state) — ckpt/crc32.hpp is
                  header-only and stays allowed. `ag::` / `nn::` tokens in
                  code are banned (comments may reference them), and
                  src/serve/CMakeLists.txt may not link legw_ag, legw_nn, or
                  legw_ckpt. This makes the "serving never touches the
                  autograd tape" guarantee a build-time property instead of
                  a code-review hope.

A finding can be waived where the rule's intent is genuinely inapplicable by
putting `lint-allow: <rule>` in a comment on the offending line or one of
the three lines above it, with a justification.
"""

from __future__ import annotations

import re
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

SOURCE_DIRS = ("src", "bench", "examples", "tests", "tools")
CPP_SUFFIXES = {".cpp", ".hpp", ".h", ".cc"}

ALLOW_RE = re.compile(r"lint-allow:\s*([\w-]+)")

# (rule, regex) pairs scanned per line. The regexes deliberately match
# constructions/usages, not the tokens inside strings-free C++ well enough
# for this codebase (no generated code, no macros hiding threads).
RAW_THREAD_RE = re.compile(r"\bstd::thread\b(?!::hardware_concurrency)")
UNSEEDED_RNG_RE = re.compile(r"\b(?:s?rand\s*\(|std::random_device\b)")
IOSTREAM_RE = re.compile(r'#\s*include\s*[<"]iostream[>"]')
TRACE_RE = re.compile(r"ScopedTrace|--trace")
# Write-mode opens: fopen(..., "w"/"wb"/"w+") and ofstream construction.
# Append mode ("a") is exempt — the telemetry journal appends records and a
# torn tail line is detected by its reader; truncate-then-write is the
# dangerous shape.
FOPEN_WRITE_RE = re.compile(r'\bfopen\s*\([^;]*,\s*"w[b+]?"\s*\)')
OFSTREAM_RE = re.compile(r"\bstd::ofstream\b")
# serve-no-tape: headers that drag the tape/training stack into serving.
# ckpt/crc32.hpp is the one sanctioned ckpt include (header-only, no link).
SERVE_INCLUDE_RE = re.compile(r'#\s*include\s*"(?:ag/|nn/|ckpt/checkpoint)')
# Token usage is checked on comment-stripped text so doc comments may still
# say "mirrors ag::add_bias" without tripping the rule.
SERVE_TOKEN_RE = re.compile(r"\b(?:ag|nn)::")
SERVE_LINK_RE = re.compile(r"\blegw_(?:ag|nn|ckpt)\b")


def allowed(lines: list[str], idx: int, rule: str) -> bool:
    for back in range(max(0, idx - 3), idx + 1):
        m = ALLOW_RE.search(lines[back])
        if m and m.group(1) == rule:
            return True
    return False


def strip_line_comment(line: str, marker: str) -> str:
    pos = line.find(marker)
    return line if pos < 0 else line[:pos]


def iter_sources(root: Path) -> list[Path]:
    out = []
    for d in SOURCE_DIRS:
        sub = root / d
        if sub.is_dir():
            out.extend(p for p in sorted(sub.rglob("*"))
                       if p.suffix in CPP_SUFFIXES)
    return out


def lint(root: Path = REPO) -> list[str]:
    findings: list[str] = []

    def report(path: Path, lineno: int, rule: str, msg: str) -> None:
        rel = path.relative_to(root)
        findings.append(f"{rel}:{lineno}: [{rule}] {msg}")

    for path in iter_sources(root):
        rel = path.relative_to(root).as_posix()
        lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
        in_thread_pool = rel.startswith("src/core/thread_pool")
        in_rng = rel.startswith("src/core/rng")
        is_lint_py_peer = rel.startswith("tools/")
        in_serve = rel.startswith("src/serve/")
        for i, line in enumerate(lines):
            lineno = i + 1
            if not in_thread_pool and RAW_THREAD_RE.search(line):
                if not allowed(lines, i, "raw-thread"):
                    report(path, lineno, "raw-thread",
                           "raw std::thread outside core/thread_pool; "
                           "use core::ThreadPool")
            if not in_rng and not is_lint_py_peer and UNSEEDED_RNG_RE.search(line):
                if not allowed(lines, i, "unseeded-rng"):
                    report(path, lineno, "unseeded-rng",
                           "unseeded RNG; use core::Rng with an explicit seed")
            if rel.startswith("src/core/") and IOSTREAM_RE.search(line):
                if not allowed(lines, i, "iostream-core"):
                    report(path, lineno, "iostream-core",
                           "<iostream> in core/ hot-path code; use cstdio")
            if (rel.startswith("src/") and not rel.startswith("src/core/io.")
                    and (FOPEN_WRITE_RE.search(line)
                         or OFSTREAM_RE.search(line))):
                if not allowed(lines, i, "atomic-write"):
                    report(path, lineno, "atomic-write",
                           "direct write-mode open in src/; publish run "
                           "artifacts via core::AtomicFile / "
                           "core::atomic_write_file")
            if in_serve:
                if SERVE_INCLUDE_RE.search(line):
                    if not allowed(lines, i, "serve-no-tape"):
                        report(path, lineno, "serve-no-tape",
                               "src/serve/ must stay tape-free: no ag/, nn/, "
                               "or ckpt/checkpoint includes "
                               "(ckpt/crc32.hpp is the allowed exception)")
                elif SERVE_TOKEN_RE.search(strip_line_comment(line, "//")):
                    if not allowed(lines, i, "serve-no-tape"):
                        report(path, lineno, "serve-no-tape",
                               "src/serve/ must stay tape-free: ag:: / nn:: "
                               "usage is banned on the inference path")

    bench_dir = root / "bench"
    if bench_dir.is_dir():
        for path in sorted(bench_dir.glob("*.cpp")):
            text = path.read_text(encoding="utf-8", errors="replace")
            if not TRACE_RE.search(text):
                report(path, 1, "bench-trace",
                       "bench binary does not accept --trace "
                       "(construct bench_common.hpp's ScopedTrace in main)")

    # The no-tape link contract lives in the build file, not a C++ source, so
    # scan it specially (comments after `#` may still name the banned libs).
    serve_cmake = root / "src" / "serve" / "CMakeLists.txt"
    if serve_cmake.is_file():
        lines = serve_cmake.read_text(encoding="utf-8",
                                      errors="replace").splitlines()
        for i, line in enumerate(lines):
            if SERVE_LINK_RE.search(strip_line_comment(line, "#")):
                if not allowed(lines, i, "serve-no-tape"):
                    report(serve_cmake, i + 1, "serve-no-tape",
                           "legw_serve may link only legw_core, legw_mem, "
                           "and legw_obs; legw_ag/legw_nn/legw_ckpt pull "
                           "the tape into serving")

    return findings


def self_test() -> int:
    """Seeded-violation check for serve-no-tape: the rule must fire on a
    planted bad tree, stay quiet on a planted clean tree, and the real repo
    must be clean. Exits 0 on success, 1 with diagnostics on any miss."""
    failures: list[str] = []

    def expect(cond: bool, msg: str) -> None:
        if not cond:
            failures.append(msg)

    with tempfile.TemporaryDirectory(prefix="legw-lint-selftest-") as tmp:
        bad = Path(tmp) / "bad"
        (bad / "src" / "serve").mkdir(parents=True)
        (bad / "src" / "serve" / "bad.cpp").write_text(
            '#include "ag/ops.hpp"\n'                      # line 1: fires
            '#include "nn/module.hpp"\n'                   # line 2: fires
            '#include "ckpt/checkpoint.hpp"\n'             # line 3: fires
            '#include "ckpt/crc32.hpp"\n'                  # line 4: allowed
            '// comment mentioning ag::add_bias is fine\n'  # line 5: quiet
            'void f() { auto v = ag::relu(nn::zeros()); }\n',  # line 6: fires
            encoding="utf-8")
        (bad / "src" / "serve" / "CMakeLists.txt").write_text(
            "# comment naming legw_ag is fine\n"
            "add_library(legw_serve bad.cpp)\n"
            "target_link_libraries(legw_serve PUBLIC legw_core legw_ag)\n",
            encoding="utf-8")
        found = [f for f in lint(bad) if "[serve-no-tape]" in f]
        expect(any("bad.cpp:1:" in f for f in found),
               "ag/ include not caught")
        expect(any("bad.cpp:2:" in f for f in found),
               "nn/ include not caught")
        expect(any("bad.cpp:3:" in f for f in found),
               "ckpt/checkpoint include not caught")
        expect(not any("bad.cpp:4:" in f for f in found),
               "ckpt/crc32.hpp wrongly flagged")
        expect(not any("bad.cpp:5:" in f for f in found),
               "comment-only ag:: wrongly flagged")
        expect(any("bad.cpp:6:" in f for f in found),
               "ag::/nn:: code token not caught")
        expect(any("CMakeLists.txt:3:" in f for f in found),
               "legw_ag link not caught")
        expect(not any("CMakeLists.txt:1:" in f for f in found),
               "CMake comment naming legw_ag wrongly flagged")

        clean = Path(tmp) / "clean"
        (clean / "src" / "serve").mkdir(parents=True)
        (clean / "src" / "serve" / "good.cpp").write_text(
            '#include "ckpt/crc32.hpp"\n'
            '#include "core/tensor.hpp"\n'
            '// replicates ag::lstm_cell forward without the tape\n'
            'void g() { (void)legw::ckpt::crc32(nullptr, 0); }\n',
            encoding="utf-8")
        (clean / "src" / "serve" / "CMakeLists.txt").write_text(
            "add_library(legw_serve good.cpp)\n"
            "target_link_libraries(legw_serve PUBLIC legw_core legw_mem "
            "legw_obs)\n",
            encoding="utf-8")
        stray = [f for f in lint(clean) if "[serve-no-tape]" in f]
        expect(not stray, f"clean tree flagged: {stray}")

    real = [f for f in lint(REPO) if "[serve-no-tape]" in f]
    expect(not real, f"real tree has serve-no-tape findings: {real}")

    if failures:
        for msg in failures:
            print(f"lint --self-test: FAIL: {msg}", file=sys.stderr)
        return 1
    print("lint --self-test: ok")
    return 0


def main(argv: list[str]) -> int:
    if "--list" in argv:
        print(__doc__)
        return 0
    if "--self-test" in argv:
        return self_test()
    findings = lint()
    for f in findings:
        print(f)
    if findings:
        print(f"lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
