#!/usr/bin/env python3
"""Repo-specific lint rules the compiler cannot enforce.

Run from the repo root (the `lint` CMake target does):

    python3 tools/lint.py            # check, exit 1 on findings
    python3 tools/lint.py --list     # print the rules and exit

Rules:

  raw-thread      std::thread may only be constructed inside
                  src/core/thread_pool.* — everything else goes through the
                  ThreadPool so the tracer sees it and shutdown joins it.
  unseeded-rng    rand()/srand()/std::random_device are banned everywhere:
                  the determinism contract (tests/test_determinism_golden)
                  requires every random stream to flow from core::Rng with
                  an explicit seed. core/rng.* is the one sanctioned home.
  iostream-core   <iostream> is banned in src/core/: its static init and
                  sync-with-stdio cost land in every binary, and the hot
                  paths log through printf-style tracing instead.
  bench-trace     every bench/*.cpp must accept --trace, either by
                  constructing bench_common.hpp's ScopedTrace or by parsing
                  the flag itself — untraceable benches are unprofilable.
  atomic-write    non-append fopen()/std::ofstream writes in src/ must go
                  through core::AtomicFile / core::atomic_write_file
                  (src/core/io.* is the sanctioned home): a direct write
                  torn by a crash corrupts the run artifact it replaces.
                  Read-mode opens ("r"/"rb") and append journals ("a") are
                  exempt.

A finding can be waived where the rule's intent is genuinely inapplicable by
putting `lint-allow: <rule>` in a comment on the offending line or one of
the three lines above it, with a justification.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

SOURCE_DIRS = ("src", "bench", "examples", "tests", "tools")
CPP_SUFFIXES = {".cpp", ".hpp", ".h", ".cc"}

ALLOW_RE = re.compile(r"lint-allow:\s*([\w-]+)")

# (rule, regex) pairs scanned per line. The regexes deliberately match
# constructions/usages, not the tokens inside strings-free C++ well enough
# for this codebase (no generated code, no macros hiding threads).
RAW_THREAD_RE = re.compile(r"\bstd::thread\b(?!::hardware_concurrency)")
UNSEEDED_RNG_RE = re.compile(r"\b(?:s?rand\s*\(|std::random_device\b)")
IOSTREAM_RE = re.compile(r'#\s*include\s*[<"]iostream[>"]')
TRACE_RE = re.compile(r"ScopedTrace|--trace")
# Write-mode opens: fopen(..., "w"/"wb"/"w+") and ofstream construction.
# Append mode ("a") is exempt — the telemetry journal appends records and a
# torn tail line is detected by its reader; truncate-then-write is the
# dangerous shape.
FOPEN_WRITE_RE = re.compile(r'\bfopen\s*\([^;]*,\s*"w[b+]?"\s*\)')
OFSTREAM_RE = re.compile(r"\bstd::ofstream\b")


def allowed(lines: list[str], idx: int, rule: str) -> bool:
    for back in range(max(0, idx - 3), idx + 1):
        m = ALLOW_RE.search(lines[back])
        if m and m.group(1) == rule:
            return True
    return False


def iter_sources() -> list[Path]:
    out = []
    for d in SOURCE_DIRS:
        root = REPO / d
        if root.is_dir():
            out.extend(p for p in sorted(root.rglob("*")) if p.suffix in CPP_SUFFIXES)
    return out


def lint() -> list[str]:
    findings: list[str] = []

    def report(path: Path, lineno: int, rule: str, msg: str) -> None:
        rel = path.relative_to(REPO)
        findings.append(f"{rel}:{lineno}: [{rule}] {msg}")

    for path in iter_sources():
        rel = path.relative_to(REPO).as_posix()
        lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
        in_thread_pool = rel.startswith("src/core/thread_pool")
        in_rng = rel.startswith("src/core/rng")
        is_lint_py_peer = rel.startswith("tools/")
        for i, line in enumerate(lines):
            lineno = i + 1
            if not in_thread_pool and RAW_THREAD_RE.search(line):
                if not allowed(lines, i, "raw-thread"):
                    report(path, lineno, "raw-thread",
                           "raw std::thread outside core/thread_pool; "
                           "use core::ThreadPool")
            if not in_rng and not is_lint_py_peer and UNSEEDED_RNG_RE.search(line):
                if not allowed(lines, i, "unseeded-rng"):
                    report(path, lineno, "unseeded-rng",
                           "unseeded RNG; use core::Rng with an explicit seed")
            if rel.startswith("src/core/") and IOSTREAM_RE.search(line):
                if not allowed(lines, i, "iostream-core"):
                    report(path, lineno, "iostream-core",
                           "<iostream> in core/ hot-path code; use cstdio")
            if (rel.startswith("src/") and not rel.startswith("src/core/io.")
                    and (FOPEN_WRITE_RE.search(line)
                         or OFSTREAM_RE.search(line))):
                if not allowed(lines, i, "atomic-write"):
                    report(path, lineno, "atomic-write",
                           "direct write-mode open in src/; publish run "
                           "artifacts via core::AtomicFile / "
                           "core::atomic_write_file")

    for path in sorted((REPO / "bench").glob("*.cpp")):
        text = path.read_text(encoding="utf-8", errors="replace")
        if not TRACE_RE.search(text):
            report(path, 1, "bench-trace",
                   "bench binary does not accept --trace "
                   "(construct bench_common.hpp's ScopedTrace in main)")

    return findings


def main(argv: list[str]) -> int:
    if "--list" in argv:
        print(__doc__)
        return 0
    findings = lint()
    for f in findings:
        print(f)
    if findings:
        print(f"lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
