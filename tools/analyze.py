#!/usr/bin/env python3
"""Unified static-analysis driver: one command, one machine-readable verdict.

Runs the repo's full static gate as sequential passes:

  tsa-build         configure + build with clang under -Werror=thread-safety
                    (the `analyze` preset's flags): every lock-contract
                    violation in src/ is a hard compile error.
  negative-compile  ctest -L analyze in the TSA build tree: the seeded
                    violations in tests/analysis/ must FAIL to compile and
                    the clean control must compile — proving the analysis is
                    armed, not just absent.
  tidy              the clang-tidy profile (.clang-tidy) over src/ via the
                    `tidy` target in the TSA build tree.
  lint              tools/lint.py (repo-specific rules, incl. raw-mutex).

Usage:

    python3 tools/analyze.py [--strict] [--out report.json]
                             [--build-dir DIR] [-j N]

Passes that need missing tools (no clang++ / clang-tidy on PATH — e.g. a
GCC-only dev box) are reported as "skipped", and the driver still exits 0:
locally the gate degrades gracefully. CI runs with --strict, where a skip is
a failure — the analyze job must actually analyze. Set LEGW_CLANGXX /
LEGW_CLANG_TIDY to point at specific binaries.

The JSON report (--out) has the shape:

    {"ok": true, "passes": [
        {"name": "tsa-build", "status": "pass", "detail": "...",
         "duration_s": 12.3}, ...]}

with status one of pass | fail | skipped.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


class Pass:
    def __init__(self, name: str) -> None:
        self.name = name
        self.status = "fail"
        self.detail = ""
        self.duration_s = 0.0

    def as_dict(self) -> dict:
        return {"name": self.name, "status": self.status,
                "detail": self.detail, "duration_s": round(self.duration_s, 2)}


def run(cmd: list[str], log: list[str], cwd: Path = REPO) -> int:
    log.append("$ " + " ".join(cmd))
    proc = subprocess.run(cmd, cwd=cwd, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True)
    if proc.stdout:
        log.append(proc.stdout.rstrip())
    return proc.returncode


def tail(log: list[str], n: int = 40) -> str:
    lines: list[str] = []
    for chunk in log:
        lines.extend(chunk.splitlines())
    return "\n".join(lines[-n:])


def find_clangxx() -> str | None:
    env = os.environ.get("LEGW_CLANGXX")
    if env:
        return env if shutil.which(env) or Path(env).is_file() else None
    return shutil.which("clang++")


def find_clang_tidy() -> str | None:
    env = os.environ.get("LEGW_CLANG_TIDY")
    if env:
        return env if shutil.which(env) or Path(env).is_file() else None
    return shutil.which("clang-tidy")


def pass_tsa_build(build_dir: Path, jobs: int) -> Pass:
    p = Pass("tsa-build")
    clangxx = find_clangxx()
    if clangxx is None:
        p.status = "skipped"
        p.detail = "clang++ not found (set LEGW_CLANGXX or install clang)"
        return p
    log: list[str] = []
    # Direct configure rather than --preset so --build-dir and the found
    # compiler override cleanly; the cache variables match the preset.
    rc = run(["cmake", "-S", str(REPO), "-B", str(build_dir),
              "-DCMAKE_BUILD_TYPE=RelWithDebInfo",
              f"-DCMAKE_CXX_COMPILER={clangxx}",
              "-DLEGW_THREAD_SAFETY=ON"], log)
    if rc == 0:
        rc = run(["cmake", "--build", str(build_dir), "-j", str(jobs)], log)
    p.status = "pass" if rc == 0 else "fail"
    p.detail = ("clean under -Werror=thread-safety" if rc == 0
                else tail(log))
    return p


def pass_negative_compile(build_dir: Path) -> Pass:
    p = Pass("negative-compile")
    if not (build_dir / "CTestTestfile.cmake").is_file():
        p.status = "skipped"
        p.detail = "no TSA build tree (tsa-build skipped or failed)"
        return p
    log: list[str] = []
    rc = run(["ctest", "--test-dir", str(build_dir), "-L", "analyze",
              "--output-on-failure", "--no-tests=error"], log)
    p.status = "pass" if rc == 0 else "fail"
    p.detail = ("seeded violations rejected, clean control accepted"
                if rc == 0 else tail(log))
    return p


def pass_tidy(build_dir: Path) -> Pass:
    p = Pass("tidy")
    if find_clang_tidy() is None:
        p.status = "skipped"
        p.detail = ("clang-tidy not found (set LEGW_CLANG_TIDY or install "
                    "clang-tidy)")
        return p
    if not (build_dir / "CMakeCache.txt").is_file():
        p.status = "skipped"
        p.detail = "no build tree with a compile database"
        return p
    log: list[str] = []
    rc = run(["cmake", "--build", str(build_dir), "--target", "tidy"], log)
    p.status = "pass" if rc == 0 else "fail"
    p.detail = ".clang-tidy profile clean" if rc == 0 else tail(log)
    return p


def pass_lint() -> Pass:
    p = Pass("lint")
    log: list[str] = []
    rc = run([sys.executable, str(REPO / "tools" / "lint.py")], log)
    p.status = "pass" if rc == 0 else "fail"
    p.detail = "tools/lint.py clean" if rc == 0 else tail(log)
    return p


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--strict", action="store_true",
                    help="treat skipped passes as failures (CI mode)")
    ap.add_argument("--out", type=Path, default=None,
                    help="write the JSON report here")
    ap.add_argument("--build-dir", type=Path,
                    default=REPO / "build-analyze",
                    help="TSA build tree (default: build-analyze)")
    ap.add_argument("-j", "--jobs", type=int, default=os.cpu_count() or 2)
    args = ap.parse_args(argv)

    passes: list[Pass] = []
    for fn in (lambda: pass_tsa_build(args.build_dir, args.jobs),
               lambda: pass_negative_compile(args.build_dir),
               lambda: pass_tidy(args.build_dir),
               pass_lint):
        t0 = time.monotonic()
        p = fn()
        p.duration_s = time.monotonic() - t0
        passes.append(p)
        print(f"analyze: {p.name}: {p.status}"
              + (f" ({p.detail})" if p.status != "fail" else ""))
        if p.status == "fail":
            print(p.detail, file=sys.stderr)

    bad = {"fail", "skipped"} if args.strict else {"fail"}
    ok = not any(p.status in bad for p in passes)
    report = {"ok": ok, "passes": [p.as_dict() for p in passes]}
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2) + "\n",
                            encoding="utf-8")
        print(f"analyze: report written to {args.out}")
    print(f"analyze: {'ok' if ok else 'FAILED'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
