// Shared experiment configuration for the paper-reproduction benches.
//
// Every bench binary prints the rows of one paper table/figure. Scales are
// reduced from the paper's (TPU pods -> one CPU); the *scaling factors* k
// match the paper (see DESIGN.md §1). Set LEGW_BENCH_SCALE=2 (or higher) to
// multiply dataset sizes and epochs for higher-fidelity runs.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/thread_pool.hpp"
#include "data/corpus.hpp"
#include "data/images.hpp"
#include "data/synthetic_mnist.hpp"
#include "data/translation.hpp"
#include "models/gnmt.hpp"
#include "models/mnist_lstm.hpp"
#include "models/ptb_model.hpp"
#include "models/resnet.hpp"
#include "obs/trace.hpp"
#include "sched/legw.hpp"
#include "train/runners.hpp"

namespace legw::bench {

inline int bench_scale() {
  if (const char* env = std::getenv("LEGW_BENCH_SCALE")) {
    const int s = std::atoi(env);
    if (s >= 1) return s;
  }
  return 1;
}

// ---- tracing ------------------------------------------------------------------
//
// Every bench binary constructs one of these first thing in main. Tracing
// turns on when a trace output path is given, via `--trace <path>` /
// `--trace=<path>` (argv is scanned directly so benches without a Flags
// parser honour it too) or the LEGW_TRACE environment variable. At exit the
// destructor prints the per-phase summary table (with thread-pool
// utilisation over the binary's wall time) and writes the
// chrome://tracing-compatible JSON to the path. With no path this is inert
// and the bench pays only the disabled-flag branches.
class ScopedTrace {
 public:
  ScopedTrace(int argc, char** argv)
      : start_(std::chrono::steady_clock::now()) {
    path_ = obs::trace_env_path();
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--trace=", 0) == 0) {
        path_ = arg.substr(8);
      } else if (arg == "--trace" && i + 1 < argc) {
        path_ = argv[i + 1];
      }
    }
    if (!path_.empty()) {
      obs::set_tracing_enabled(true);
      obs::TraceRecorder::global().clear();
      core::ThreadPool::global().reset_stats();
    }
  }

  ~ScopedTrace() {
    if (path_.empty()) return;
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start_)
                            .count();
    auto& rec = obs::TraceRecorder::global();
    std::printf("\n%s", rec.summary_table(wall).c_str());
    std::string err;
    if (rec.write_chrome_trace(path_, &err)) {
      std::printf("trace written to %s (open via chrome://tracing)\n",
                  path_.c_str());
    } else {
      std::fprintf(stderr, "trace export failed: %s\n", err.c_str());
    }
  }

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  std::string path_;
  std::chrono::steady_clock::time_point start_;
};

// ---- canonical workloads -----------------------------------------------------

struct MnistWorkload {
  data::SyntheticMnist dataset;
  models::MnistLstmConfig model;
  // LEGW baseline tuned once at the smallest batch (paper §5.1.1: momentum
  // solver, constant LR). The warmup fraction w0/epochs matches the paper's
  // regime: even at the largest scale factor k the warmup ends well before
  // training does.
  sched::LegwBaseline legw_base{32, 0.1f, 0.1};
  i64 base_batch = 32;
  i64 epochs;

  MnistWorkload()
      : dataset(2048 * bench_scale(), 512, 42), epochs(10 * bench_scale()) {
    model.transform_dim = 32;
    model.hidden_dim = 32;
  }
};

struct PtbWorkload {
  data::SyntheticCorpus corpus;
  models::PtbConfig model;
  // PTB-small recipe: momentum + exponential epoch decay after a flat phase.
  sched::LegwBaseline legw_base{8, 0.5f, 0.2};
  i64 base_batch = 8;
  i64 epochs;
  double flat_epochs = 4.0;
  float decay_gamma = 0.6f;

  PtbWorkload()
      : corpus([] {
          data::CorpusConfig c;
          c.vocab = 200;
          c.n_states = 10;
          c.n_train_tokens = 36000 * bench_scale();
          c.n_valid_tokens = 3000;
          c.seed = 1;
          return c;
        }()),
        model(models::PtbConfig::small(200)),
        epochs(8 * bench_scale()) {
    model.embed_dim = 48;
    model.hidden_dim = 48;
    model.bptt_len = 10;
  }
};

struct GnmtWorkload {
  data::SyntheticTranslation dataset;
  models::GnmtConfig model;
  sched::LegwBaseline legw_base{16, 0.015f, 0.1};
  i64 base_batch = 16;
  i64 epochs;

  GnmtWorkload()
      : dataset([] {
          data::TranslationConfig c;
          c.src_vocab = 60;
          c.tgt_vocab = 60;
          c.min_len = 3;
          c.max_len = 7;
          c.n_train = 1024 * bench_scale();
          c.n_test = 128;
          c.seed = 7;
          return c;
        }()),
        epochs(40 * bench_scale()) {
    model.src_vocab = 60;
    model.tgt_vocab = 60;
    model.embed_dim = 16;
    model.hidden_dim = 16;
    model.num_layers = 2;  // paper: 4 at hidden 1024; scaled for CPU
  }
};

struct ResnetWorkload {
  data::SyntheticImages dataset;
  models::ResNetConfig model;
  // LARS baseline. The paper's base warmup is 0.3125 of 90 epochs (~0.35%);
  // we keep the same *fraction* of the (much shorter) epoch budget so that
  // at the largest scale factor the warmup still ends well before the run
  // does, exactly as in Table 3 (10 of 90 epochs at k=32).
  sched::LegwBaseline legw_base{32, 4.0f, 0.02};
  i64 base_batch = 32;
  i64 epochs;
  // Largest batch in the sweeps: k=16 over the baseline keeps >= 40
  // optimizer steps at the top end (the paper keeps ~3600 at 32K).
  std::vector<i64> batch_sweep{32, 64, 128, 256, 512};

  ResnetWorkload()
      : dataset(3072 * bench_scale(), 512, 42), epochs(5 * bench_scale()) {
    model.width = 8;
    model.blocks_per_stage = 1;
  }
};

// ---- output helpers -----------------------------------------------------------

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("(reproduces %s; scaled workload, see DESIGN.md)\n\n",
              paper_ref.c_str());
}

inline void print_row_divider(int width = 72) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline const char* fmt_metric(double v, bool diverged, char* buf,
                              std::size_t n) {
  if (diverged) {
    std::snprintf(buf, n, "diverged");
  } else {
    std::snprintf(buf, n, "%.4f", v);
  }
  return buf;
}

}  // namespace legw::bench
