// Figure 9 (appendix): with default hyper-parameters, Adam clearly beats
// Adadelta on both MNIST and PTB — the paper's justification for picking
// Adam as the adaptive-solver baseline.
#include <cstdio>

#include "bench_common.hpp"

using namespace legw;

int main(int argc, char** argv) {
  bench::ScopedTrace scoped_trace(argc, argv);
  bench::print_header("Figure 9: default-hyper Adam vs Adadelta",
                      "paper Figure 9 (appendix)");

  // ---- 9.1 MNIST -----------------------------------------------------------------
  {
    bench::MnistWorkload w;
    std::printf("9.1 MNIST test accuracy per epoch (batch %lld):\n",
                static_cast<long long>(w.base_batch));
    for (const char* solver : {"adam", "adadelta"}) {
      // Library defaults: Adam lr 1e-3, Adadelta lr 1.0.
      sched::ConstantLr schedule(std::string(solver) == "adam" ? 1e-3f : 1.0f);
      train::RunConfig run;
      run.batch_size = w.base_batch;
      run.epochs = w.epochs;
      run.optimizer = solver;
      run.schedule = &schedule;
      auto r = train::train_mnist(w.dataset, w.model, run);
      std::printf("  %-9s:", solver);
      for (double acc : r.per_epoch_metric) std::printf(" %7.4f", acc);
      std::printf("\n");
    }
  }

  // ---- 9.2 PTB --------------------------------------------------------------------
  {
    bench::PtbWorkload w;
    std::printf("\n9.2 PTB validation perplexity per epoch (batch %lld):\n",
                static_cast<long long>(w.base_batch));
    for (const char* solver : {"adam", "adadelta"}) {
      sched::ConstantLr schedule(std::string(solver) == "adam" ? 1e-3f : 1.0f);
      train::RunConfig run;
      run.batch_size = w.base_batch;
      run.epochs = w.epochs;
      run.optimizer = solver;
      run.schedule = &schedule;
      auto r = train::train_ptb(w.corpus, w.model, run);
      std::printf("  %-9s:", solver);
      for (double ppl : r.per_epoch_metric) std::printf(" %8.2f", ppl);
      std::printf("\n");
    }
  }

  std::printf(
      "\nShape check (paper Fig. 9): Adam converges markedly faster and to a\n"
      "better metric than Adadelta under default settings on both tasks.\n");
  return 0;
}
