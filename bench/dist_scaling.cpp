// Distributed-engine scaling bench: times one data-parallel gradient step at
// 1/2/4/8 replicas with bucketed allreduce in barrier mode (reduce after the
// full backward — the classic synchronous schedule) versus overlapped mode
// (buckets reduced concurrently with the backward tail). Both modes share the
// same bucket plan, reduction order, and simulated wire (latency + bandwidth
// sleeps), so the comparison isolates overlap, and their gradients must stay
// bitwise identical ("parity" in the output). Emits BENCH_dist.json.
//
// The workload is a deep Linear+ReLU stack rather than the LSTM models: BPTT
// accumulates every cell weight's gradient across all timesteps, so an
// LSTM's buckets all finalise at the very end of backward and there is
// nothing left to overlap — whereas a layer stack finalises layer k's
// gradients the moment backward passes layer k, exactly the stagger the
// overlapped schedule exploits (and what deep stacked-LSTM models get
// per-layer).
//
// Usage: dist_scaling [--out BENCH_dist.json] [--reps N]
// See docs/DIST.md for how to read the output.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "ag/ops.hpp"
#include "bench_common.hpp"
#include "core/flags.hpp"
#include "core/io.hpp"
#include "nn/layers.hpp"
#include "obs/trace.hpp"
#include "dist/overlap.hpp"

namespace {

using namespace legw;
using core::Rng;
using core::Tensor;

constexpr i64 kLayers = 8;
constexpr i64 kDim = 512;   // 512x512 weights: one ~1 MB bucket per layer
constexpr i64 kBatch = 32;  // per replica

struct Replica {
  std::vector<std::unique_ptr<nn::Linear>> layers;
  std::vector<ag::Variable> params;
};

struct ReplicaSet {
  std::vector<Replica> replicas;
  std::vector<std::vector<ag::Variable>> params;
};

ReplicaSet make_replicas(int n) {
  ReplicaSet set;
  for (int r = 0; r < n; ++r) {
    Replica rep;
    Rng rng(42);  // identical initialisation on every replica
    for (i64 l = 0; l < kLayers; ++l) {
      rep.layers.push_back(std::make_unique<nn::Linear>(kDim, kDim, rng));
      for (const ag::Variable& p : rep.layers.back()->parameters()) {
        rep.params.push_back(p);
      }
    }
    set.replicas.push_back(std::move(rep));
    set.params.push_back(set.replicas.back().params);
  }
  return set;
}

dist::OverlapConfig bench_config(bool overlap) {
  dist::OverlapConfig config;
  config.overlap = overlap;
  config.bucket_bytes = 8 * 1024;  // roughly one bucket per layer
  // Wire sized so the comm term is a large fraction of — but not larger
  // than — the backward compute: a bigger bill cannot be hidden no matter
  // how good the schedule is, and a much smaller one is invisible.
  config.wire.latency_us = 200.0;
  config.wire.gbytes_per_sec = 0.5;
  return config;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ModeResult {
  double step_ms = 0.0;
  i64 buckets = 0;
  std::vector<Tensor> grads;  // replica 0, for the parity check
};

ModeResult run_mode(int n_replicas, bool overlap, int reps) {
  ReplicaSet set = make_replicas(n_replicas);
  // Per-replica input/target shards, distinct across replicas.
  std::vector<Tensor> inputs, targets;
  Rng data_rng(7);
  for (int r = 0; r < n_replicas; ++r) {
    inputs.push_back(Tensor::randn({kBatch, kDim}, data_rng));
    targets.push_back(Tensor::randn({kBatch, kDim}, data_rng));
  }
  auto loss_fn = [&](int r) {
    const Replica& rep = set.replicas[static_cast<std::size_t>(r)];
    ag::Variable h =
        ag::Variable::constant(inputs[static_cast<std::size_t>(r)]);
    for (i64 l = 0; l < kLayers; ++l) {
      h = rep.layers[static_cast<std::size_t>(l)]->forward(h);
      if (l + 1 < kLayers) h = ag::relu(h);
    }
    return ag::mean_all(ag::mul(
        h, ag::Variable::constant(targets[static_cast<std::size_t>(r)])));
  };
  const dist::OverlapConfig config = bench_config(overlap);

  ModeResult res;
  dist::OverlapResult step = dist::overlapped_backward(set.params, loss_fn,
                                                       config);  // warm-up
  LEGW_CHECK(step.ok, "dist_scaling: " + step.error);
  const double t0 = now_seconds();
  for (int i = 0; i < reps; ++i) {
    step = dist::overlapped_backward(set.params, loss_fn, config);
    LEGW_CHECK(step.ok, "dist_scaling: " + step.error);
  }
  res.step_ms = (now_seconds() - t0) * 1e3 / reps;
  res.buckets = step.stats.n_buckets;
  for (const ag::Variable& p : set.params[0]) res.grads.push_back(p.grad());
  return res;
}

bool bitwise_equal(const std::vector<Tensor>& a, const std::vector<Tensor>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t p = 0; p < a.size(); ++p) {
    if (a[p].numel() != b[p].numel()) return false;
    for (i64 i = 0; i < a[p].numel(); ++i) {
      if (a[p][i] != b[p][i]) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ScopedTrace scoped_trace(argc, argv);
  core::Flags flags(argc, argv);
  const std::string out_path = flags.get_string("out", "BENCH_dist.json");
  const int reps = static_cast<int>(flags.get_int("reps", 5));

  const std::vector<int> replica_counts = {1, 2, 4, 8};

  core::AtomicFile out(out_path);
  LEGW_CHECK(out.ok(), "dist_scaling: cannot open " + out_path);
  std::FILE* f = out.stream();
  std::fprintf(f, "{\n  \"layers\": %lld,\n  \"dim\": %lld,\n",
               static_cast<long long>(kLayers), static_cast<long long>(kDim));
  std::fprintf(f, "  \"batch_per_replica\": %lld,\n",
               static_cast<long long>(kBatch));
  std::fprintf(f, "  \"bucket_bytes\": %lld,\n",
               static_cast<long long>(bench_config(true).bucket_bytes));
  std::fprintf(f, "  \"replicas\": [\n");

  for (std::size_t i = 0; i < replica_counts.size(); ++i) {
    const int n = replica_counts[i];
    const ModeResult sync = run_mode(n, /*overlap=*/false, reps);
    const ModeResult ovl = run_mode(n, /*overlap=*/true, reps);
    const bool parity = bitwise_equal(sync.grads, ovl.grads);
    const double speedup = sync.step_ms / ovl.step_ms;
    std::printf("replicas %d  sync %8.2f ms  overlap %8.2f ms  "
                "speedup %.2fx  buckets %lld  parity %s\n",
                n, sync.step_ms, ovl.step_ms, speedup,
                static_cast<long long>(ovl.buckets), parity ? "yes" : "NO");
    std::fprintf(f,
                 "    {\"replicas\": %d, \"sync_step_ms\": %.3f, "
                 "\"overlap_step_ms\": %.3f, \"speedup\": %.3f, "
                 "\"buckets\": %lld, \"parity\": %s}%s\n",
                 n, sync.step_ms, ovl.step_ms, speedup,
                 static_cast<long long>(ovl.buckets),
                 parity ? "true" : "false",
                 i + 1 < replica_counts.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");

  // Traced pass: one overlapped 4-replica step under tracing so the JSON
  // carries the per-bucket spans (bucket_reduce, overlap_idle,
  // replica_backward) and engine counters.
  const bool was_enabled = obs::tracing_enabled();
  auto& rec = obs::TraceRecorder::global();
  obs::set_tracing_enabled(true);
  rec.clear();
  (void)run_mode(4, /*overlap=*/true, 1);
  obs::set_tracing_enabled(was_enabled);

  const auto phases = rec.phase_summary();
  std::fprintf(f, "  \"phases\": {\n");
  std::size_t pi = 0;
  for (const auto& [name, st] : phases) {
    std::fprintf(f,
                 "    \"%s\": {\"count\": %lld, \"total_ms\": %.4f, "
                 "\"mean_ms\": %.5f, \"p50_ms\": %.5f, \"p95_ms\": %.5f}%s\n",
                 name.c_str(), static_cast<long long>(st.count), st.total_ms,
                 st.mean_ms, st.p50_ms, st.p95_ms,
                 ++pi < phases.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  const auto ctrs = rec.counters();
  std::fprintf(f, "  \"counters\": {\n");
  std::size_t ci = 0;
  for (const auto& [name, v] : ctrs) {
    std::fprintf(f, "    \"%s\": %lld%s\n", name.c_str(),
                 static_cast<long long>(v), ++ci < ctrs.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::string publish_err;
  LEGW_CHECK(out.commit(&publish_err), "dist_scaling: " + publish_err);
  if (!was_enabled) rec.clear();
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
