// Distributed-engine scaling bench: times one data-parallel gradient step
// per all-reduce algorithm (tree / ring / hier / the auto policy) across
// replica counts up to 32, in barrier mode (reduce after the full backward —
// the classic synchronous schedule) versus overlapped mode (buckets reduced
// concurrently with the backward tail). Both modes share the same bucket
// plan, reduction order, and simulated wire (latency + bandwidth sleeps, with
// a faster intra-group link for the hierarchical schedule), so the comparison
// isolates overlap, and their gradients must stay bitwise identical
// ("parity" in the output). A second section re-runs the 8-replica auto row
// under the fp16 and int8 wire formats to show the compression effect on the
// simulated wire volume. Emits BENCH_dist.json.
//
// The workload is a deep Linear+ReLU stack rather than the LSTM models: BPTT
// accumulates every cell weight's gradient across all timesteps, so an
// LSTM's buckets all finalise at the very end of backward and there is
// nothing left to overlap — whereas a layer stack finalises layer k's
// gradients the moment backward passes layer k, exactly the stagger the
// overlapped schedule exploits (and what deep stacked-LSTM models get
// per-layer).
//
// Usage: dist_scaling [--out BENCH_dist.json] [--reps N] [--smoke]
//                     [--lat-us US] [--gbps GB] [--only N]
//   --smoke: tiny shapes, 2/4/8 replicas, one rep — the ctest smoke target.
//   --lat-us/--gbps: fabric wire-model overrides (intra-group link derives
//   from them); --only N restricts the sweep to one replica count.
// See docs/DIST.md for how to read the output.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "ag/ops.hpp"
#include "bench_common.hpp"
#include "core/flags.hpp"
#include "core/io.hpp"
#include "nn/layers.hpp"
#include "obs/trace.hpp"
#include "dist/algorithms.hpp"
#include "dist/overlap.hpp"

namespace {

using namespace legw;
using core::Rng;
using core::Tensor;

struct Shape {
  i64 layers = 16;  // deep: bucket completions spread across the backward
  i64 dim = 256;    // 256x256 weights: one ~256 KB bucket per layer
  i64 batch = 16;   // per replica
};

struct Replica {
  std::vector<std::unique_ptr<nn::Linear>> layers;
  std::vector<ag::Variable> params;
};

struct ReplicaSet {
  std::vector<Replica> replicas;
  std::vector<std::vector<ag::Variable>> params;
};

ReplicaSet make_replicas(int n, const Shape& shape) {
  ReplicaSet set;
  for (int r = 0; r < n; ++r) {
    Replica rep;
    Rng rng(42);  // identical initialisation on every replica
    for (i64 l = 0; l < shape.layers; ++l) {
      rep.layers.push_back(
          std::make_unique<nn::Linear>(shape.dim, shape.dim, rng));
      for (const ag::Variable& p : rep.layers.back()->parameters()) {
        rep.params.push_back(p);
      }
    }
    set.replicas.push_back(std::move(rep));
    set.params.push_back(set.replicas.back().params);
  }
  return set;
}

// Wire sized so the comm term is a large fraction of — but not larger
// than — the backward compute: a bigger bill cannot be hidden no matter
// how good the schedule is, and a much smaller one is invisible. The
// intra-group link is the faster "within one node" path the hierarchical
// schedule exploits. Overridable from the command line for tuning against a
// particular host.
struct WireParams {
  double latency_us = 100.0;
  double gbytes_per_sec = 1.0;
};

dist::OverlapConfig bench_config(bool overlap, core::DistAlgo algo,
                                 core::WireFormat wire_format,
                                 const WireParams& wp) {
  dist::OverlapConfig config;
  config.overlap = overlap;
  config.algo = algo;
  config.wire_format = wire_format;
  config.bucket_bytes = 8 * 1024;  // roughly one bucket per layer
  config.comm_threads = 2;         // exercise the multi-reducer path
  config.wire.latency_us = wp.latency_us;
  config.wire.gbytes_per_sec = wp.gbytes_per_sec;
  config.wire.intra_latency_us = wp.latency_us / 5.0;
  config.wire.intra_gbytes_per_sec = wp.gbytes_per_sec * 4.0;
  return config;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ModeResult {
  double step_ms = 0.0;
  i64 buckets = 0;
  i64 wire_bytes = 0;
  dist::OverlapStats stats;
  std::vector<Tensor> grads;  // replica 0, for the parity check
};

ModeResult run_mode(int n_replicas, const Shape& shape, bool overlap,
                    core::DistAlgo algo, core::WireFormat wire_format,
                    const WireParams& wp, int reps) {
  ReplicaSet set = make_replicas(n_replicas, shape);
  // Per-replica input/target shards, distinct across replicas.
  std::vector<Tensor> inputs, targets;
  Rng data_rng(7);
  for (int r = 0; r < n_replicas; ++r) {
    inputs.push_back(Tensor::randn({shape.batch, shape.dim}, data_rng));
    targets.push_back(Tensor::randn({shape.batch, shape.dim}, data_rng));
  }
  auto loss_fn = [&](int r) {
    const Replica& rep = set.replicas[static_cast<std::size_t>(r)];
    ag::Variable h =
        ag::Variable::constant(inputs[static_cast<std::size_t>(r)]);
    for (i64 l = 0; l < shape.layers; ++l) {
      h = rep.layers[static_cast<std::size_t>(l)]->forward(h);
      if (l + 1 < shape.layers) h = ag::relu(h);
    }
    return ag::mean_all(ag::mul(
        h, ag::Variable::constant(targets[static_cast<std::size_t>(r)])));
  };
  const dist::OverlapConfig config =
      bench_config(overlap, algo, wire_format, wp);

  ModeResult res;
  dist::OverlapResult step = dist::overlapped_backward(set.params, loss_fn,
                                                       config);  // warm-up
  LEGW_CHECK(step.ok, "dist_scaling: " + step.error);
  const double t0 = now_seconds();
  for (int i = 0; i < reps; ++i) {
    step = dist::overlapped_backward(set.params, loss_fn, config);
    LEGW_CHECK(step.ok, "dist_scaling: " + step.error);
  }
  res.step_ms = (now_seconds() - t0) * 1e3 / reps;
  res.buckets = step.stats.n_buckets;
  res.wire_bytes = step.stats.wire_bytes;
  res.stats = step.stats;
  for (const ag::Variable& p : set.params[0]) res.grads.push_back(p.grad());
  return res;
}

bool bitwise_equal(const std::vector<Tensor>& a, const std::vector<Tensor>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t p = 0; p < a.size(); ++p) {
    if (a[p].numel() != b[p].numel()) return false;
    for (i64 i = 0; i < a[p].numel(); ++i) {
      if (a[p][i] != b[p][i]) return false;
    }
  }
  return true;
}

// The algorithm most buckets resolved to — for auto rows this names the
// policy's pick at that scale.
const char* resolved_name(const dist::OverlapStats& stats) {
  if (stats.buckets_ring >= stats.buckets_tree &&
      stats.buckets_ring >= stats.buckets_hier) {
    if (stats.buckets_ring > 0) return "ring";
  }
  if (stats.buckets_hier >= stats.buckets_tree && stats.buckets_hier > 0) {
    return "hier";
  }
  return "tree";
}

}  // namespace

int main(int argc, char** argv) {
  bench::ScopedTrace scoped_trace(argc, argv);
  core::Flags flags(argc, argv);
  const std::string out_path = flags.get_string("out", "BENCH_dist.json");
  const bool smoke = flags.get_bool("smoke", false);
  const int reps =
      static_cast<int>(flags.get_int("reps", smoke ? 1 : 3));
  WireParams wp;
  wp.latency_us = flags.get_double("lat-us", wp.latency_us);
  wp.gbytes_per_sec = flags.get_double("gbps", wp.gbytes_per_sec);

  Shape shape;
  std::vector<int> replica_counts = {1, 2, 4, 8, 16, 32};
  if (smoke) {
    shape.layers = 4;
    shape.dim = 64;
    shape.batch = 8;
    replica_counts = {2, 4, 8};
  }
  const int only = static_cast<int>(flags.get_int("only", 0));
  if (only > 0) replica_counts = {only};
  shape.layers = flags.get_int("layers", shape.layers);
  shape.dim = flags.get_int("dim", shape.dim);
  shape.batch = flags.get_int("batch", shape.batch);
  const std::vector<core::DistAlgo> algos = {
      core::DistAlgo::kAuto, core::DistAlgo::kTree, core::DistAlgo::kRing,
      core::DistAlgo::kHier};

  core::AtomicFile out(out_path);
  LEGW_CHECK(out.ok(), "dist_scaling: cannot open " + out_path);
  std::FILE* f = out.stream();
  std::fprintf(f, "{\n  \"layers\": %lld,\n  \"dim\": %lld,\n",
               static_cast<long long>(shape.layers),
               static_cast<long long>(shape.dim));
  std::fprintf(f, "  \"batch_per_replica\": %lld,\n",
               static_cast<long long>(shape.batch));
  const dist::OverlapConfig ref =
      bench_config(true, core::DistAlgo::kAuto, core::WireFormat::kFp32, wp);
  std::fprintf(f, "  \"bucket_bytes\": %lld,\n  \"comm_threads\": %d,\n",
               static_cast<long long>(ref.bucket_bytes), ref.comm_threads);
  std::fprintf(f,
               "  \"wire_latency_us\": %.1f,\n  \"wire_gbytes_per_sec\": "
               "%.3f,\n",
               wp.latency_us, wp.gbytes_per_sec);
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"rows\": [\n");

  bool first_row = true;
  for (const int n : replica_counts) {
    // The big counts dominate wall time on small hosts; halve the reps.
    const int n_reps = n >= 16 ? std::max(1, reps / 2) : reps;
    for (const core::DistAlgo algo : algos) {
      const ModeResult sync = run_mode(n, shape, /*overlap=*/false, algo,
                                       core::WireFormat::kFp32, wp, n_reps);
      const ModeResult ovl = run_mode(n, shape, /*overlap=*/true, algo,
                                      core::WireFormat::kFp32, wp, n_reps);
      const bool parity = bitwise_equal(sync.grads, ovl.grads);
      const double speedup = sync.step_ms / ovl.step_ms;
      std::printf("replicas %2d  algo %-4s  sync %8.2f ms  overlap %8.2f ms  "
                  "speedup %.2fx  buckets %lld (%s)  wire %lld B  parity %s\n",
                  n, core::dist_algo_name(algo), sync.step_ms, ovl.step_ms,
                  speedup, static_cast<long long>(ovl.buckets),
                  resolved_name(ovl.stats),
                  static_cast<long long>(ovl.wire_bytes),
                  parity ? "yes" : "NO");
      std::fprintf(f,
                   "%s    {\"replicas\": %d, \"algo\": \"%s\", "
                   "\"resolved\": \"%s\", \"sync_step_ms\": %.3f, "
                   "\"overlap_step_ms\": %.3f, \"speedup\": %.3f, "
                   "\"buckets\": %lld, \"wire_bytes\": %lld, \"parity\": %s}",
                   first_row ? "" : ",\n", n, core::dist_algo_name(algo),
                   resolved_name(ovl.stats), sync.step_ms, ovl.step_ms,
                   speedup, static_cast<long long>(ovl.buckets),
                   static_cast<long long>(ovl.wire_bytes),
                   parity ? "true" : "false");
      first_row = false;
    }
  }
  std::fprintf(f, "\n  ],\n");

  // Wire-format section: the 8-replica auto row under each wire format. The
  // interesting number is the simulated wire volume — fp16 halves it, int8
  // quarters it (plus one scale word per hop) — while parity degrades from
  // bitwise to approximate by design (error feedback recovers the loss in
  // training; see tests/test_dist_wire.cpp).
  const int wire_n = smoke ? 4 : 8;
  std::fprintf(f, "  \"wire_formats\": [\n");
  const std::vector<core::WireFormat> formats = {
      core::WireFormat::kFp32, core::WireFormat::kFp16,
      core::WireFormat::kInt8};
  for (std::size_t i = 0; i < formats.size(); ++i) {
    const ModeResult r = run_mode(wire_n, shape, /*overlap=*/true,
                                  core::DistAlgo::kAuto, formats[i], wp,
                                  smoke ? 1 : reps);
    std::printf("wire %-4s  replicas %d  step %8.2f ms  wire %lld B\n",
                core::wire_format_name(formats[i]), wire_n, r.step_ms,
                static_cast<long long>(r.wire_bytes));
    std::fprintf(f,
                 "    {\"format\": \"%s\", \"replicas\": %d, "
                 "\"step_ms\": %.3f, \"wire_bytes\": %lld}%s\n",
                 core::wire_format_name(formats[i]), wire_n, r.step_ms,
                 static_cast<long long>(r.wire_bytes),
                 i + 1 < formats.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");

  // Traced pass: one overlapped step under tracing so the JSON carries the
  // per-bucket spans (bucket_reduce and its per-algorithm children,
  // overlap_idle, replica_backward) and engine counters.
  const bool was_enabled = obs::tracing_enabled();
  auto& rec = obs::TraceRecorder::global();
  obs::set_tracing_enabled(true);
  rec.clear();
  (void)run_mode(smoke ? 4 : 8, shape, /*overlap=*/true, core::DistAlgo::kAuto,
                 core::WireFormat::kFp32, wp, 1);
  obs::set_tracing_enabled(was_enabled);

  const auto phases = rec.phase_summary();
  std::fprintf(f, "  \"phases\": {\n");
  std::size_t pi = 0;
  for (const auto& [name, st] : phases) {
    std::fprintf(f,
                 "    \"%s\": {\"count\": %lld, \"total_ms\": %.4f, "
                 "\"mean_ms\": %.5f, \"p50_ms\": %.5f, \"p95_ms\": %.5f}%s\n",
                 name.c_str(), static_cast<long long>(st.count), st.total_ms,
                 st.mean_ms, st.p50_ms, st.p95_ms,
                 ++pi < phases.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  const auto ctrs = rec.counters();
  std::fprintf(f, "  \"counters\": {\n");
  std::size_t ci = 0;
  for (const auto& [name, v] : ctrs) {
    std::fprintf(f, "    \"%s\": %lld%s\n", name.c_str(),
                 static_cast<long long>(v), ++ci < ctrs.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  const legw::core::Status publish = out.commit();
  LEGW_CHECK(publish.ok(), "dist_scaling: " + publish.message());
  if (!was_enabled) rec.clear();
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
