// Table 3: LEGW + LARS scales ResNet training across batch sizes with no
// hyper-parameter tuning — accuracy stays flat as batch grows 32x.
// Paper: batch 1K..32K, LR 2^2.5..2^5, warmup 10/2^5..10 epochs, top-5 flat
// at ~0.93. Here: batch 32..1024 (same k range), synthetic images.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

using namespace legw;

int main(int argc, char** argv) {
  bench::ScopedTrace scoped_trace(argc, argv);
  bench::print_header("Table 3: ResNet batch scaling with LEGW + LARS",
                      "paper Table 3");
  bench::ResnetWorkload w;

  std::printf("%10s %10s %14s %10s %10s\n", "batch", "init LR",
              "warmup epochs", "test acc", "secs");
  bench::print_row_divider(60);

  double base_acc = 0.0;
  for (i64 batch : w.batch_sweep) {
    const auto recipe = sched::legw_scale(w.legw_base, batch);
    auto schedule = sched::legw_schedule(w.legw_base, batch, [&](float peak) {
      return std::make_shared<sched::PolynomialLr>(
          peak, static_cast<double>(w.epochs), 2.0f);
    });
    train::RunConfig run;
      run.final_eval_only = true;
    run.batch_size = batch;
    run.epochs = w.epochs;
    run.optimizer = "lars";
    run.weight_decay = 1e-4f;
    run.schedule = schedule.get();
    run.final_eval_only = true;
    auto result = train::train_resnet(w.dataset, w.model, run);

    char buf[32];
    std::printf("%10lld %10.4f %14.4f %10s %10.1f\n",
                static_cast<long long>(batch), recipe.peak_lr,
                recipe.warmup_epochs,
                bench::fmt_metric(result.final_metric, result.diverged, buf,
                                  sizeof buf),
                result.wall_seconds);
    if (batch == 32) base_acc = result.final_metric;
  }
  std::printf(
      "\nShape check (paper): accuracy is flat through 8x batch scaling and\n"
      "dips only at k=16, where this scaled workload leaves ~30 optimizer\n"
      "steps total (the paper keeps ~3600 steps at its largest batch). LR\n"
      "follows sqrt scaling, warmup epochs follow linear-epoch scaling, and\n"
      "no hyper-parameter is retuned anywhere in the sweep (baseline %.4f).\n",
      base_acc);
  return 0;
}
