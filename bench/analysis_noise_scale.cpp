// Analysis bench (extension): the gradient noise scale B_simple for the
// MNIST-LSTM and PTB objectives, at initialisation and after brief training.
// McCandlish et al.'s critical-batch theory predicts batch scaling pays off
// linearly below B_simple and saturates above it — the quantitative
// backdrop for where the paper's (and this repo's) batch sweeps stop.
#include <cstdio>

#include "analysis/gradient_noise.hpp"
#include "bench_common.hpp"
#include "optim/optimizer.hpp"

using namespace legw;

namespace {

template <typename GradSqFn>
void report_line(const char* label, int n_draws, GradSqFn&& grad_sq) {
  auto e = analysis::estimate_noise_scale_averaged(8, 256, n_draws, grad_sq);
  if (e.valid) {
    std::printf("  %-24s tr(Sigma) %10.4f  ||G||^2 %10.6f  B_simple %8.1f\n",
                label, e.trace_sigma, e.grad_sq_norm, e.noise_scale);
  } else {
    std::printf("  %-24s (estimate noisy/invalid at %d draws)\n", label,
                n_draws);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::ScopedTrace scoped_trace(argc, argv);
  bench::print_header("Gradient noise scale per application",
                      "extension: McCandlish et al. critical-batch analysis");
  const int draws = 8;

  // ---- MNIST-LSTM ------------------------------------------------------------
  {
    bench::MnistWorkload w;
    models::MnistLstmConfig mcfg = w.model;
    mcfg.transform_dim = 24;
    mcfg.hidden_dim = 24;
    models::MnistLstm model(mcfg);
    core::Rng draw_rng(11);
    auto grad_sq = [&](i64 batch, int) {
      std::vector<i64> idx;
      for (i64 i = 0; i < batch; ++i) {
        idx.push_back(static_cast<i64>(
            draw_rng.uniform_int(static_cast<u64>(w.dataset.n_train()))));
      }
      model.zero_grad();
      ag::backward(model.loss(w.dataset.gather_images(idx, true),
                              w.dataset.gather_labels(idx, true)));
      double sq = 0.0;
      for (const auto& p : model.parameters()) {
        const double n = p.grad().l2_norm();
        sq += n * n;
      }
      return sq;
    };
    std::printf("MNIST-LSTM:\n");
    report_line("at init", draws, grad_sq);
    auto opt = optim::make_optimizer("momentum", model.parameters());
    opt->set_lr(0.1f);
    data::IndexBatcher batcher(w.dataset.n_train(), 32, 3);
    for (int s = 0; s < 40; ++s) {
      std::vector<i64> idx = batcher.next();
      model.zero_grad();
      ag::backward(model.loss(w.dataset.gather_images(idx, true),
                              w.dataset.gather_labels(idx, true)));
      optim::clip_grad_norm(opt->params(), 5.0f);
      opt->step();
    }
    report_line("after 40 steps", draws, grad_sq);
  }

  // ---- PTB-small --------------------------------------------------------------
  {
    bench::PtbWorkload w;
    models::PtbConfig mcfg = w.model;
    models::PtbModel model(mcfg);
    core::Rng drng(5);
    // Draw random BPTT windows as "samples of size batch".
    core::Rng draw_rng(17);
    const auto& tokens = w.corpus.train_tokens();
    auto grad_sq = [&](i64 batch, int) {
      std::vector<i32> inputs(static_cast<std::size_t>(batch * mcfg.bptt_len));
      std::vector<i32> targets(static_cast<std::size_t>(batch * mcfg.bptt_len));
      for (i64 b = 0; b < batch; ++b) {
        const i64 start = static_cast<i64>(draw_rng.uniform_int(
            static_cast<u64>(tokens.size() - mcfg.bptt_len - 1)));
        for (i64 t = 0; t < mcfg.bptt_len; ++t) {
          inputs[static_cast<std::size_t>(b * mcfg.bptt_len + t)] =
              tokens[static_cast<std::size_t>(start + t)];
          targets[static_cast<std::size_t>(b * mcfg.bptt_len + t)] =
              tokens[static_cast<std::size_t>(start + t + 1)];
        }
      }
      model.zero_grad();
      auto out = model.chunk_loss(inputs, targets, batch, mcfg.bptt_len,
                                  model.zero_carried(batch), drng);
      ag::backward(out.loss);
      double sq = 0.0;
      for (const auto& p : model.parameters()) {
        const double n = p.grad().l2_norm();
        sq += n * n;
      }
      return sq;
    };
    std::printf("\nPTB-small:\n");
    report_line("at init", draws, grad_sq);
  }

  std::printf(
      "\nReading: the sweeps in this repo (and the paper's) operate around\n"
      "or above B_simple — exactly the regime where naive linear LR scaling\n"
      "fails and the Sqrt Scaling + LEGW warmup combination is needed.\n");
  return 0;
}
