// Figure 7: at the largest batch size, even a comprehensive LR grid search
// over the baseline's effective range cannot beat LEGW's untuned schedule.
// 7.1: MNIST (constant-LR momentum baseline); 7.2: PTB (exponential decay).
#include <cstdio>
#include <memory>

#include "analysis/tuning.hpp"
#include "bench_common.hpp"

using namespace legw;

int main(int argc, char** argv) {
  bench::ScopedTrace scoped_trace(argc, argv);
  bench::print_header(
      "Figure 7: comprehensive tuning vs LEGW at the largest batch",
      "paper Figure 7 (8K-batch analog)");

  // ---- 7.1 MNIST at the max batch ---------------------------------------------
  {
    bench::MnistWorkload w;
    const i64 big_batch = 256;  // 8x the base batch (paper: 8K from 128)

    auto legw_sched = sched::legw_constant(w.legw_base, big_batch);
    train::RunConfig run;
      run.final_eval_only = true;
    run.batch_size = big_batch;
    run.epochs = w.epochs;
    run.optimizer = "momentum";
    run.schedule = legw_sched.get();
    auto legw_result = train::train_mnist(w.dataset, w.model, run);

    // The paper's effective range for MNIST was [0.01, 0.16]: an x2 ladder.
    auto grid = analysis::geometric_grid(0.02f, 0.64f, 6);
    std::printf("7.1 MNIST @ batch %lld — tuned constant-LR momentum:\n",
                static_cast<long long>(big_batch));
    std::printf("%12s %12s\n", "LR", "test acc");
    auto tune = analysis::grid_search_lr(
        grid,
        [&](float lr) {
          sched::ConstantLr s(lr);
          train::RunConfig trun = run;
          trun.schedule = &s;
          auto r = train::train_mnist(w.dataset, w.model, trun);
          char buf[32];
          std::printf("%12.4f %12s\n", lr,
                      bench::fmt_metric(r.final_metric, r.diverged, buf,
                                        sizeof buf));
          std::fflush(stdout);
          return std::make_pair(r.final_metric, r.diverged);
        },
        true);
    std::printf("  best tuned: %.4f @ LR %.4f   |   LEGW (no tuning): %.4f\n",
                tune.best_metric, tune.best_lr, legw_result.final_metric);
  }

  // ---- 7.2 PTB at the max batch -------------------------------------------------
  {
    bench::PtbWorkload w;
    const i64 big_batch = 64;  // 8x base (paper: 640 from 20 = 32x)

    auto legw_sched = sched::legw_schedule(w.legw_base, big_batch, [&](float peak) {
      return std::make_shared<sched::ExponentialEpochDecay>(peak, w.flat_epochs,
                                                            w.decay_gamma);
    });
    train::RunConfig run;
      run.final_eval_only = true;
    run.batch_size = big_batch;
    run.epochs = w.epochs;
    run.optimizer = "momentum";
    run.schedule = legw_sched.get();
    auto legw_result = train::train_ptb(w.corpus, w.model, run);

    // Paper's PTB effective range was [0.1, 1.6].
    auto grid = analysis::geometric_grid(0.1f, 3.2f, 6);
    std::printf("\n7.2 PTB @ batch %lld — tuned exp-decay momentum (no warmup):\n",
                static_cast<long long>(big_batch));
    std::printf("%12s %12s\n", "init LR", "valid ppl");
    auto tune = analysis::grid_search_lr(
        grid,
        [&](float lr) {
          sched::ExponentialEpochDecay s(lr, w.flat_epochs, w.decay_gamma);
          train::RunConfig trun = run;
          trun.schedule = &s;
          auto r = train::train_ptb(w.corpus, w.model, trun);
          char buf[32];
          std::printf("%12.4f %12s\n", lr,
                      bench::fmt_metric(r.final_metric, r.diverged, buf,
                                        sizeof buf));
          std::fflush(stdout);
          return std::make_pair(r.final_metric, r.diverged);
        },
        false);
    std::printf("  best tuned: %.2f @ LR %.4f   |   LEGW (no tuning): %.2f\n",
                tune.best_metric, tune.best_lr, legw_result.final_metric);
  }

  std::printf(
      "\nShape check (paper Fig. 7): LEGW's untuned result matches or beats\n"
      "the best grid-searched baseline at the largest batch size.\n");
  return 0;
}
