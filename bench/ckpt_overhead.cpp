// Checkpoint overhead characterisation (docs/CHECKPOINT.md).
//
// Quantifies what crash-safety costs: per-step wall time of the MNIST-LSTM
// runner without checkpointing vs checkpointing every step (the worst-case
// cadence; real runs amortise over hundreds of steps), plus isolated
// save/restore latency and the on-disk image size. Emits BENCH_ckpt.json.
//
// Usage: ckpt_overhead [--out BENCH_ckpt.json] [--reps 5] [--trace t.json]

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_common.hpp"
#include "ckpt/checkpoint.hpp"
#include "core/flags.hpp"
#include "core/io.hpp"
#include "optim/optimizer.hpp"

namespace {

using legw::i64;
namespace bench = legw::bench;
namespace ckpt = legw::ckpt;
namespace train = legw::train;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
             .count() *
         1e3;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ScopedTrace scoped_trace(argc, argv);
  legw::core::Flags flags(argc, argv);
  const std::string out_path = flags.get_string("out", "BENCH_ckpt.json");
  const int reps = static_cast<int>(flags.get_int("reps", 5));

  const std::string dir = "bench_ckpt_tmp";
  std::filesystem::remove_all(dir);

  bench::MnistWorkload w;
  auto schedule = legw::sched::legw_constant(w.legw_base, w.base_batch);

  train::RunConfig run;
  run.batch_size = w.base_batch;
  run.epochs = 1;
  run.optimizer = "momentum";
  run.schedule = schedule.get();
  run.final_eval_only = true;

  // Timed loops: identical seeded run with and without a per-step write.
  const auto t0 = std::chrono::steady_clock::now();
  auto baseline = train::train_mnist(w.dataset, w.model, run);
  const double baseline_ms = ms_since(t0);

  run.checkpoint_dir = dir;
  run.checkpoint_every_steps = 1;  // worst case: every optimizer step
  run.checkpoint_keep_last = 2;
  const auto t1 = std::chrono::steady_clock::now();
  auto checked = train::train_mnist(w.dataset, w.model, run);
  const double checked_ms = ms_since(t1);

  const double base_step_ms = baseline_ms / static_cast<double>(baseline.steps);
  const double ckpt_step_ms = checked_ms / static_cast<double>(checked.steps);
  const double overhead_pct = (ckpt_step_ms / base_step_ms - 1.0) * 100.0;

  // Isolated save/restore latency on the same model + optimizer state.
  legw::models::MnistLstm model(w.model);
  auto opt = legw::optim::make_optimizer("momentum", model.parameters(), 0.0f);
  ckpt::TrainState state;
  state.models.push_back(&model);
  state.optimizers.push_back(opt.get());
  state.step = 1;
  const std::string micro_path = dir + "/micro.legw";
  const i64 image_bytes = static_cast<i64>(ckpt::encode(state).size());

  double save_ms = 0.0;
  double restore_ms = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto ts = std::chrono::steady_clock::now();
    const auto sres = ckpt::save(state, micro_path);
    LEGW_CHECK(sres.ok(), "ckpt_overhead: save failed: " + sres.message);
    save_ms += ms_since(ts);
    const auto tl = std::chrono::steady_clock::now();
    const auto lres = ckpt::load(state, micro_path);
    LEGW_CHECK(lres.ok(), "ckpt_overhead: load failed: " + lres.message);
    restore_ms += ms_since(tl);
  }
  save_ms /= reps;
  restore_ms /= reps;

  std::printf("steps %lld  base %.3f ms/step  ckpt-every-step %.3f ms/step  "
              "overhead %.1f%%\n",
              static_cast<long long>(baseline.steps), base_step_ms,
              ckpt_step_ms, overhead_pct);
  std::printf("image %lld bytes  save %.3f ms  restore %.3f ms\n",
              static_cast<long long>(image_bytes), save_ms, restore_ms);

  char body[1024];
  std::snprintf(
      body, sizeof body,
      "{\n"
      "  \"steps\": %lld,\n"
      "  \"baseline_step_ms\": %.4f,\n"
      "  \"ckpt_every_step_ms\": %.4f,\n"
      "  \"overhead_pct\": %.2f,\n"
      "  \"image_bytes\": %lld,\n"
      "  \"save_ms\": %.4f,\n"
      "  \"restore_ms\": %.4f\n"
      "}\n",
      static_cast<long long>(baseline.steps), base_step_ms, ckpt_step_ms,
      overhead_pct, static_cast<long long>(image_bytes), save_ms, restore_ms);
  const legw::core::Status st =
      legw::core::atomic_write_file(out_path, std::string(body));
  LEGW_CHECK(st.ok(), "ckpt_overhead: " + st.message());
  std::printf("wrote %s\n", out_path.c_str());

  std::filesystem::remove_all(dir);
  return 0;
}
