// Figure 2: the LEGW learning-rate schedule under (2.1) multi-step decay and
// (2.2) polynomial decay, for batch sizes 1K..32K. Pure schedule traces — the
// exact curves from the paper (this bench uses the paper's own absolute
// numbers since no training is involved).
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "sched/legw.hpp"

using namespace legw;

namespace {

void trace(const char* name, const sched::LrSchedule& s,
           const std::vector<double>& epochs) {
  std::printf("%-28s", name);
  for (double e : epochs) std::printf(" %9.4f", static_cast<double>(s.lr(e)));
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::ScopedTrace scoped_trace(argc, argv);
  bench::print_header("Figure 2: LEGW schedules for ImageNet/ResNet50",
                      "paper Figure 2 (2.1 multi-step, 2.2 poly decay)");

  // Paper baseline: batch 1K, peak 2^2.5, warmup 0.3125 epochs, 90 epochs.
  sched::LegwBaseline base{1024, std::pow(2.0f, 2.5f), 0.3125};
  const std::vector<double> probe_epochs = {0.0, 0.15, 0.3125, 1.0,  5.0,
                                            20.0, 29.9, 30.0,  59.9, 60.0,
                                            79.9, 80.0, 89.9};

  std::printf("%-28s", "epoch:");
  for (double e : probe_epochs) std::printf(" %9.3f", e);
  std::printf("\n");
  bench::print_row_divider(28 + 10 * static_cast<int>(probe_epochs.size()));

  std::printf("-- 2.1 multi-step decay (x0.1 at epochs 30/60/80) --\n");
  for (i64 batch : {1024, 2048, 4096, 8192, 16384, 32768}) {
    auto sched = sched::legw_schedule(base, batch, [](float peak) {
      return std::make_shared<sched::MultiStepLr>(
          peak, std::vector<double>{30.0, 60.0, 80.0}, 0.1f);
    });
    const auto recipe = sched::legw_scale(base, batch);
    char label[64];
    std::snprintf(label, sizeof label, "batch %5lld (wu %.4f ep)",
                  static_cast<long long>(batch), recipe.warmup_epochs);
    trace(label, *sched, probe_epochs);
  }

  std::printf("\n-- 2.2 polynomial decay (power = 2.0, 90 epochs) --\n");
  for (i64 batch : {1024, 2048, 4096, 8192, 16384, 32768}) {
    auto sched = sched::legw_schedule(base, batch, [](float peak) {
      return std::make_shared<sched::PolynomialLr>(peak, 90.0, 2.0f);
    });
    const auto recipe = sched::legw_scale(base, batch);
    char label[64];
    std::snprintf(label, sizeof label, "batch %5lld (wu %.4f ep)",
                  static_cast<long long>(batch), recipe.warmup_epochs);
    trace(label, *sched, probe_epochs);
  }

  std::printf(
      "\nShape check (paper): peak LR doubles per 4x batch (sqrt rule);\n"
      "warmup epochs double per 2x batch (linear-epoch rule); decay\n"
      "epochs/shape identical across batch sizes.\n");
  return 0;
}
