// Figure 4: wall-clock speedup from LEGW-enabled large batches on the same
// hardware. The paper reports 5.3x average over 4 LSTM apps: larger batches
// amortise per-step overhead, so epochs finish faster at equal sample counts.
//
// Procedure here: (1) measure real per-step seconds of this implementation
// at several batch sizes for each app; (2) fit the saturation DeviceModel;
// (3) report measured epoch-time speedup of the largest LEGW batch over the
// baseline batch, plus the model's extrapolation to cluster execution.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "core/flags.hpp"
#include "dist/cluster_model.hpp"
#include "optim/optimizer.hpp"

using namespace legw;

namespace {

using Clock = std::chrono::steady_clock;

// Measures seconds per training step at the given batch size (median-ish:
// averages the post-warmup steps).
template <typename StepFn>
double measure_step_seconds(StepFn&& step, int reps = 3) {
  step();  // warm-up (allocations, pool spin-up)
  const auto start = Clock::now();
  for (int i = 0; i < reps; ++i) step();
  return std::chrono::duration<double>(Clock::now() - start).count() / reps;
}

struct AppTiming {
  const char* name;
  std::vector<std::pair<i64, double>> samples;  // (batch, step seconds)
  i64 base_batch;
  i64 big_batch;
  i64 n_samples;  // per epoch
};

void report(const AppTiming& t, double* speedup_accum) {
  dist::DeviceModel model = dist::fit_device_model(t.samples);
  // Measured step times at the endpoints.
  double base_step = 0.0, big_step = 0.0;
  for (const auto& [b, s] : t.samples) {
    if (b == t.base_batch) base_step = s;
    if (b == t.big_batch) big_step = s;
  }
  const double base_epoch =
      base_step * static_cast<double>((t.n_samples + t.base_batch - 1) / t.base_batch);
  const double big_epoch =
      big_step * static_cast<double>((t.n_samples + t.big_batch - 1) / t.big_batch);
  const double speedup = base_epoch / big_epoch;
  *speedup_accum += speedup;

  std::printf("%-12s batch %4lld -> %5lld: epoch %7.2fs -> %7.2fs,  "
              "speedup %4.2fx  (fitted peak %.0f samp/s, b_half %.0f)\n",
              t.name, static_cast<long long>(t.base_batch),
              static_cast<long long>(t.big_batch), base_epoch, big_epoch,
              speedup, model.peak_samples_per_sec,
              model.half_saturation_batch);
}

}  // namespace

int main(int argc, char** argv) {
  bench::ScopedTrace scoped_trace(argc, argv);
  bench::print_header("Figure 4: large-batch speedup on the same hardware",
                      "paper Figure 4 (5.3x average over 4 LSTM apps)");
  double speedup_sum = 0.0;
  int n_apps = 0;

  // --- MNIST-LSTM -------------------------------------------------------------
  {
    bench::MnistWorkload w;
    models::MnistLstm model(w.model);
    auto opt = optim::make_optimizer("momentum", model.parameters());
    opt->set_lr(0.05f);
    AppTiming t{"MNIST-LSTM", {}, 32, 512, w.dataset.n_train()};
    for (i64 batch : {32, 64, 128, 256, 512}) {
      data::IndexBatcher batcher(w.dataset.n_train(), batch, 1);
      const double secs = measure_step_seconds([&] {
        obs::Span step_span("step");
        core::Tensor images;
        std::vector<i32> labels;
        {
          obs::Span span("data");
          const std::vector<i64> idx = batcher.next();
          images = w.dataset.gather_images(idx, true);
          labels = w.dataset.gather_labels(idx, true);
        }
        model.zero_grad();
        ag::Variable loss;
        {
          obs::Span span("forward");
          loss = model.loss(images, labels);
        }
        {
          obs::Span span("backward");
          ag::backward(loss);
        }
        obs::Span span("optimizer");
        opt->step();
      });
      t.samples.emplace_back(batch, secs);
    }
    report(t, &speedup_sum);
    ++n_apps;
  }

  // --- PTB-small --------------------------------------------------------------
  {
    bench::PtbWorkload w;
    models::PtbModel model(w.model);
    auto opt = optim::make_optimizer("momentum", model.parameters());
    opt->set_lr(0.1f);
    core::Rng drng(1);
    AppTiming t{"PTB-small", {}, 8, 128,
                static_cast<i64>(w.corpus.train_tokens().size()) /
                    w.model.bptt_len};
    for (i64 batch : {8, 16, 32, 64, 128}) {
      data::BpttBatcher batcher(w.corpus.train_tokens(), batch,
                                w.model.bptt_len);
      auto carried = model.zero_carried(batch);
      const double secs = measure_step_seconds([&] {
        obs::Span step_span("step");
        data::BpttBatcher::Chunk chunk;
        {
          obs::Span span("data");
          chunk = batcher.next_chunk();
        }
        model.zero_grad();
        models::PtbModel::ChunkResult out;
        {
          obs::Span span("forward");
          out = model.chunk_loss(chunk.inputs, chunk.targets, batch,
                                 w.model.bptt_len, carried, drng);
        }
        {
          obs::Span span("backward");
          ag::backward(out.loss);
        }
        obs::Span span("optimizer");
        opt->step();
      });
      // One "sample" = one BPTT stream position; a step covers `batch`.
      t.samples.emplace_back(batch, secs);
    }
    report(t, &speedup_sum);
    ++n_apps;
  }

  // --- PTB-large (wider model, same pipeline) ----------------------------------
  {
    bench::PtbWorkload w;
    models::PtbConfig large = models::PtbConfig::large(200);
    large.embed_dim = 96;
    large.hidden_dim = 96;
    large.bptt_len = 12;
    models::PtbModel model(large);
    auto opt = optim::make_optimizer("lars", model.parameters());
    opt->set_lr(1.0f);
    core::Rng drng(2);
    AppTiming t{"PTB-large", {}, 8, 64,
                static_cast<i64>(w.corpus.train_tokens().size()) /
                    large.bptt_len};
    for (i64 batch : {8, 16, 32, 64}) {
      data::BpttBatcher batcher(w.corpus.train_tokens(), batch, large.bptt_len);
      auto carried = model.zero_carried(batch);
      const double secs = measure_step_seconds([&] {
        obs::Span step_span("step");
        data::BpttBatcher::Chunk chunk;
        {
          obs::Span span("data");
          chunk = batcher.next_chunk();
        }
        model.zero_grad();
        models::PtbModel::ChunkResult out;
        {
          obs::Span span("forward");
          out = model.chunk_loss(chunk.inputs, chunk.targets, batch,
                                 large.bptt_len, carried, drng);
        }
        {
          obs::Span span("backward");
          ag::backward(out.loss);
        }
        obs::Span span("optimizer");
        opt->step();
      });
      t.samples.emplace_back(batch, secs);
    }
    report(t, &speedup_sum);
    ++n_apps;
  }

  // --- GNMT --------------------------------------------------------------------
  {
    bench::GnmtWorkload w;
    models::Gnmt model(w.model);
    auto opt = optim::make_optimizer("adam", model.parameters());
    opt->set_lr(0.001f);
    core::Rng drng(3);
    AppTiming t{"GNMT", {}, 16, 256,
                static_cast<i64>(w.dataset.train().size())};
    for (i64 batch : {16, 32, 64, 128, 256}) {
      data::IndexBatcher batcher(static_cast<i64>(w.dataset.train().size()),
                                 batch, 2);
      const double secs = measure_step_seconds([&] {
        obs::Span step_span("step");
        data::TranslationBatch b;
        {
          obs::Span span("data");
          const std::vector<i64> idx = batcher.next();
          b = data::make_translation_batch(w.dataset.train(), idx);
        }
        model.zero_grad();
        ag::Variable loss;
        {
          obs::Span span("forward");
          loss = model.loss(b, drng);
        }
        {
          obs::Span span("backward");
          ag::backward(loss);
        }
        obs::Span span("optimizer");
        opt->step();
      });
      t.samples.emplace_back(batch, secs);
    }
    report(t, &speedup_sum);
    ++n_apps;
  }

  std::printf("\naverage speedup over %d LSTM apps: %.2fx\n", n_apps,
              speedup_sum / n_apps);

  // Cluster extrapolation: with data parallelism the large batch also buys
  // more workers (the paper's TPU-pod setting).
  std::printf("\ncluster-model extrapolation (data-parallel, 1M-param model):\n");
  std::printf("(local dist engine: LEGW_DIST=%s)\n",
              core::dist_mode_name(core::dist_mode()));
  dist::ClusterConfig cfg;
  cfg.device = {1000.0, 64.0};
  cfg.max_batch_per_worker = 64;
  for (i64 batch : {64, 256, 1024, 4096}) {
    const auto seq =
        dist::cluster_epoch_time(cfg, 100000, batch,
                                 dist::CommMode::kSequential);
    const auto ovl =
        dist::cluster_epoch_time(cfg, 100000, batch,
                                 dist::CommMode::kOverlapped);
    std::printf(
        "  batch %5lld: %2lld workers, epoch %6.2fs sync, %6.2fs "
        "overlapped (%.2fx)\n",
        static_cast<long long>(batch), static_cast<long long>(seq.workers),
        seq.epoch_seconds, ovl.epoch_seconds,
        seq.epoch_seconds / ovl.epoch_seconds);
  }
  std::printf(
      "\nShape check (paper): the paper's 5.3x comes from an accelerator\n"
      "whose utilisation rises steeply with batch (TPU) plus pod-scale data\n"
      "parallelism. A single CPU core is already saturated at tiny batches\n"
      "(fitted b_half ~ 0-5 above), so the same-hardware factor here is\n"
      "modest; the cluster-model extrapolation shows where the paper's\n"
      "headline factor comes from once large batches buy parallel workers.\n");
  return 0;
}
