// Ablation/extension: "don't decay the learning rate, increase the batch
// size" (Smith et al. 2017, the paper's ref [27]) versus classic LR decay,
// both driven through this library's schedules, on MNIST-LSTM.
//
// Three arms at equal sample budgets:
//   A: fixed small batch + multi-step LR decay (classic)
//   B: growing batch (the decay's dual) + constant LR
//   C: growing batch + LEGW warmup on top
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "optim/optimizer.hpp"
#include "sched/batch_schedule.hpp"

using namespace legw;

namespace {

// A training loop that re-batches per epoch according to a BatchSchedule.
double train_with_batch_schedule(const bench::MnistWorkload& w,
                                 const sched::BatchSchedule& batches,
                                 const sched::LrSchedule& lr) {
  models::MnistLstm model(w.model);
  auto opt = optim::make_optimizer("momentum", model.parameters());
  i64 samples_seen = 0;
  const i64 budget = w.dataset.n_train() * w.epochs;
  while (samples_seen < budget) {
    const double epoch =
        static_cast<double>(samples_seen) / w.dataset.n_train();
    const i64 batch = batches.batch(epoch);
    opt->set_lr(lr.lr(epoch));
    // Draw a batch (fresh batcher per size change is fine: epoch-level
    // shuffling granularity).
    static thread_local std::unique_ptr<data::IndexBatcher> batcher;
    static thread_local i64 batcher_size = -1;
    if (!batcher || batcher_size != batch) {
      batcher = std::make_unique<data::IndexBatcher>(w.dataset.n_train(),
                                                     batch, 99);
      batcher_size = batch;
    }
    std::vector<i64> idx = batcher->next();
    model.zero_grad();
    ag::Variable loss = model.loss(w.dataset.gather_images(idx, true),
                                   w.dataset.gather_labels(idx, true));
    if (train::loss_diverged(loss.value()[0])) return 0.0;
    ag::backward(loss);
    optim::clip_grad_norm(opt->params(), 5.0f);
    opt->step();
    samples_seen += batch;
  }
  // Final test accuracy, chunked.
  double acc_sum = 0.0;
  i64 n = 0;
  for (i64 begin = 0; begin < w.dataset.n_test(); begin += 256) {
    const i64 end = std::min(w.dataset.n_test(), begin + 256);
    std::vector<i64> idx;
    for (i64 i = begin; i < end; ++i) idx.push_back(i);
    acc_sum += model.accuracy(w.dataset.gather_images(idx, false),
                              w.dataset.gather_labels(idx, false)) *
               static_cast<double>(end - begin);
    n += end - begin;
  }
  return acc_sum / static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) {
  bench::ScopedTrace scoped_trace(argc, argv);
  bench::print_header(
      "Ablation: LR decay vs batch growth (Smith et al. dual)",
      "extension of paper ref [27]");
  bench::MnistWorkload w;
  const float lr0 = w.legw_base.peak_lr;
  const std::vector<double> milestones = {2.0, 3.0};
  const float gamma = 0.25f;

  // A: fixed batch, multi-step decay.
  {
    sched::ConstantBatch batches(w.base_batch);
    sched::MultiStepLr lr(lr0, milestones, gamma);
    const double acc = train_with_batch_schedule(w, batches, lr);
    std::printf("A  fixed batch %3lld + LR decay x%.2f:        acc %.4f\n",
                static_cast<long long>(w.base_batch), gamma, acc);
  }
  // B: batch growth dual, constant LR.
  {
    auto batches = sched::batch_growth_dual(w.base_batch, milestones, gamma,
                                            /*max_batch=*/512);
    sched::ConstantLr lr(lr0);
    const double acc = train_with_batch_schedule(w, *batches, lr);
    std::printf("B  %-38s acc %.4f\n",
                (batches->describe() + " + const LR:").c_str(), acc);
  }
  // C: batch growth + LEGW warmup.
  {
    auto batches = sched::batch_growth_dual(w.base_batch, milestones, gamma,
                                            /*max_batch=*/512);
    sched::GradualWarmup lr(w.legw_base.warmup_epochs,
                            std::make_shared<sched::ConstantLr>(lr0));
    const double acc = train_with_batch_schedule(w, *batches, lr);
    std::printf("C  batch growth + LEGW warmup:             acc %.4f\n", acc);
  }

  std::printf(
      "\nShape check (Smith et al. / paper §2.3): batch growth matches LR\n"
      "decay at equal sample budgets while taking fewer optimizer steps;\n"
      "warmup remains compatible with the growing-batch regime.\n");
  return 0;
}
