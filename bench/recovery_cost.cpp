// Stability-sentinel cost characterisation (docs/STABILITY.md).
//
// Quantifies what divergence protection costs on a healthy run and what a
// recovery costs when an anomaly does fire. Three anomaly-free MNIST-LSTM
// runs with identical checkpoint cadence — guard off, observe mode, protect
// mode — isolate the sentinel's per-step overhead (target: <1% for protect
// on a healthy trajectory). Then one injected anomaly per class (NaN, loss
// spike, gradient explosion) against a clean protect run of the same
// configuration measures the end-to-end time-to-recover: detection,
// rollback to the blessed checkpoint, and replay back past the anomaly.
// Emits BENCH_guard.json.
//
// Usage: recovery_cost [--out BENCH_guard.json] [--reps 3] [--smoke false]
//                      [--trace t.json]

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_common.hpp"
#include "core/flags.hpp"
#include "core/io.hpp"
#include "guard/sentinel.hpp"

namespace {

using legw::i64;
namespace bench = legw::bench;
namespace core = legw::core;
namespace guard = legw::guard;
namespace train = legw::train;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
             .count() *
         1e3;
}

// Best-of-reps wall time for one seeded run; the result of the last rep.
double timed_run(const legw::data::SyntheticMnist& dataset,
                 const legw::models::MnistLstmConfig& model,
                 const train::RunConfig& run, const std::string& dir,
                 int reps, train::RunResult* out) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    std::filesystem::remove_all(dir);  // every rep starts cold
    const auto t0 = std::chrono::steady_clock::now();
    *out = train::train_mnist(dataset, model, run);
    const double ms = ms_since(t0);
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ScopedTrace scoped_trace(argc, argv);
  core::Flags flags(argc, argv);
  const std::string out_path = flags.get_string("out", "BENCH_guard.json");
  const int reps = static_cast<int>(flags.get_int("reps", 3));
  const bool smoke = flags.get_bool("smoke", false);

  // Smoke keeps the binary viable as a ctest target; the full shape gives
  // enough healthy steps for the overhead percentages to mean something.
  const i64 n_train = smoke ? 256 : 2048 * bench::bench_scale();
  const i64 epochs = smoke ? 2 : 4 * bench::bench_scale();
  const i64 anomaly_at = smoke ? 10 : 30;

  legw::data::SyntheticMnist dataset(n_train, 64, 42);
  legw::models::MnistLstmConfig model;
  model.transform_dim = 32;
  model.hidden_dim = 32;
  legw::sched::ConstantLr schedule(0.1f);

  const std::string dir = "bench_guard_tmp";
  train::RunConfig base;
  base.batch_size = 32;
  base.epochs = epochs;
  base.optimizer = "momentum";
  base.schedule = &schedule;
  base.final_eval_only = true;
  // All modes checkpoint at the same cadence so the deltas isolate the
  // sentinel itself, not the checkpoint writes it rides on.
  base.checkpoint_dir = dir;
  base.checkpoint_every_steps = 4;
  base.checkpoint_keep_last = 2;
  // The sentinel runs at its default (production) tuning; only the smoke
  // shape shrinks the window so the detectors are armed before the injected
  // anomaly fires.
  if (smoke) {
    base.sentinel.window = 8;
    base.sentinel.min_history = 4;
    base.sentinel.bless_after = 2;
  }

  const core::GuardMode saved_mode = core::guard_mode();
  train::RunResult res;

  // ---- healthy overhead: off vs observe vs protect --------------------------
  core::set_guard_mode(core::GuardMode::kOff);
  train::RunConfig off = base;
  off.sentinel.enabled = false;
  const double off_ms = timed_run(dataset, model, off, dir, reps, &res);
  const i64 steps = res.steps;
  LEGW_CHECK(!res.diverged, "recovery_cost: baseline run diverged");

  core::set_guard_mode(core::GuardMode::kObserve);
  const double observe_ms = timed_run(dataset, model, off, dir, reps, &res);
  core::set_guard_mode(core::GuardMode::kOff);

  train::RunConfig protect = base;
  protect.sentinel.enabled = true;
  const double protect_ms = timed_run(dataset, model, protect, dir, reps, &res);
  if (res.guard_anomalies != 0) {
    for (const auto& e : legw::obs::TraceRecorder::global().events()) {
      std::fprintf(stderr, "event %s:", e.kind.c_str());
      for (const auto& f : e.fields)
        std::fprintf(stderr, " %s=%s", f.first.c_str(), f.second.c_str());
      std::fprintf(stderr, "\n");
    }
  }
  LEGW_CHECK(res.guard_anomalies == 0,
             "recovery_cost: healthy run reported anomalies");

  const double off_step = off_ms / static_cast<double>(steps);
  const double observe_pct = (observe_ms / off_ms - 1.0) * 100.0;
  const double protect_pct = (protect_ms / off_ms - 1.0) * 100.0;
  std::printf("healthy: %lld steps  off %.3f ms/step  observe %+.2f%%  "
              "protect %+.2f%%  (target <1%%)\n",
              static_cast<long long>(steps), off_step, observe_pct,
              protect_pct);

  // ---- time-to-recover per anomaly class ------------------------------------
  struct ClassRow {
    const char* name;
    guard::AnomalyPlan plan;
    double extra_ms = 0.0;
  };
  ClassRow rows[] = {
      {"nan", guard::AnomalyPlan::nan_at(anomaly_at), 0.0},
      {"loss_spike", guard::AnomalyPlan::loss_spike_at(anomaly_at, 1e3f), 0.0},
      {"grad_explosion",
       guard::AnomalyPlan::grad_explosion_at(anomaly_at, 1e6f), 0.0},
  };
  for (ClassRow& row : rows) {
    train::RunConfig anom = protect;
    anom.anomaly_plan = &row.plan;
    const double ms = timed_run(dataset, model, anom, dir, reps, &res);
    LEGW_CHECK(res.guard_anomalies == 1 && res.guard_rollbacks == 1 &&
                   !res.guard_failed,
               std::string("recovery_cost: ") + row.name +
                   " did not recover cleanly");
    row.extra_ms = ms - protect_ms;
    std::printf("recover %-14s  run %.1f ms  extra %+.1f ms "
                "(detect + rollback + replay)\n",
                row.name, ms, row.extra_ms);
  }

  char body[1024];
  std::snprintf(
      body, sizeof body,
      "{\n"
      "  \"steps\": %lld,\n"
      "  \"off_step_ms\": %.4f,\n"
      "  \"observe_overhead_pct\": %.2f,\n"
      "  \"protect_overhead_pct\": %.2f,\n"
      "  \"recover_extra_ms\": {\n"
      "    \"nan\": %.2f,\n"
      "    \"loss_spike\": %.2f,\n"
      "    \"grad_explosion\": %.2f\n"
      "  }\n"
      "}\n",
      static_cast<long long>(steps), off_step, observe_pct, protect_pct,
      rows[0].extra_ms, rows[1].extra_ms, rows[2].extra_ms);
  const core::Status st = core::atomic_write_file(out_path, std::string(body));
  LEGW_CHECK(st.ok(), "recovery_cost: " + st.message());
  std::printf("wrote %s\n", out_path.c_str());

  core::set_guard_mode(saved_mode);
  std::filesystem::remove_all(dir);
  return 0;
}
