// Figure 8: even when the comprehensively-tuned baselines are allowed to
// train much longer (paper: 25->100 epochs MNIST, 13->50 epochs PTB), LEGW
// at the standard budget still wins. Large-batch setting (640-batch analog).
#include <cstdio>
#include <memory>

#include "analysis/tuning.hpp"
#include "bench_common.hpp"

using namespace legw;

int main(int argc, char** argv) {
  bench::ScopedTrace scoped_trace(argc, argv);
  bench::print_header("Figure 8: longer training does not save tuned baselines",
                      "paper Figure 8 (640-batch analog, 4x epochs)");

  // ---- 8.1 MNIST ---------------------------------------------------------------
  {
    bench::MnistWorkload w;
    const i64 big_batch = 256;
    const i64 long_epochs = w.epochs * 4;  // paper: 25 -> 100

    auto legw_sched = sched::legw_constant(w.legw_base, big_batch);
    train::RunConfig run;
      run.final_eval_only = true;
    run.batch_size = big_batch;
    run.epochs = w.epochs;  // LEGW runs the *standard* budget
    run.optimizer = "momentum";
    run.schedule = legw_sched.get();
    auto legw_result = train::train_mnist(w.dataset, w.model, run);

    std::printf("8.1 MNIST @ batch %lld, baselines run %lldx epochs:\n",
                static_cast<long long>(big_batch),
                static_cast<long long>(long_epochs / w.epochs));
    auto grid = analysis::geometric_grid(0.02f, 0.32f, 4);
    auto tune = analysis::grid_search_lr(
        grid,
        [&](float lr) {
          sched::ConstantLr s(lr);
          train::RunConfig trun = run;
          trun.epochs = long_epochs;
          trun.schedule = &s;
          auto r = train::train_mnist(w.dataset, w.model, trun);
          char buf[32];
          std::printf("  LR %7.4f (long run): %s\n", lr,
                      bench::fmt_metric(r.final_metric, r.diverged, buf,
                                        sizeof buf));
          std::fflush(stdout);
          return std::make_pair(r.final_metric, r.diverged);
        },
        true);
    std::printf("  best tuned + 4x epochs: %.4f   |   LEGW @ 1x epochs: %.4f\n",
                tune.best_metric, legw_result.final_metric);
  }

  // ---- 8.2 PTB -------------------------------------------------------------------
  {
    bench::PtbWorkload w;
    const i64 big_batch = 64;
    const i64 long_epochs = w.epochs * 4;  // paper: 13 -> 50

    auto legw_sched = sched::legw_schedule(w.legw_base, big_batch, [&](float peak) {
      return std::make_shared<sched::ExponentialEpochDecay>(peak, w.flat_epochs,
                                                            w.decay_gamma);
    });
    train::RunConfig run;
      run.final_eval_only = true;
    run.batch_size = big_batch;
    run.epochs = w.epochs;
    run.optimizer = "momentum";
    run.schedule = legw_sched.get();
    auto legw_result = train::train_ptb(w.corpus, w.model, run);

    std::printf("\n8.2 PTB @ batch %lld, baselines run %lldx epochs:\n",
                static_cast<long long>(big_batch),
                static_cast<long long>(long_epochs / w.epochs));
    auto grid = analysis::geometric_grid(0.2f, 1.6f, 4);
    auto tune = analysis::grid_search_lr(
        grid,
        [&](float lr) {
          // The long baseline keeps its decay anchored at the original flat
          // phase (paper: same schedule, just more epochs).
          sched::ExponentialEpochDecay s(lr, w.flat_epochs, w.decay_gamma);
          train::RunConfig trun = run;
          trun.epochs = long_epochs;
          trun.schedule = &s;
          auto r = train::train_ptb(w.corpus, w.model, trun);
          char buf[32];
          std::printf("  LR %7.4f (long run): %s\n", lr,
                      bench::fmt_metric(r.final_metric, r.diverged, buf,
                                        sizeof buf));
          std::fflush(stdout);
          return std::make_pair(r.final_metric, r.diverged);
        },
        false);
    std::printf("  best tuned + 4x epochs: %.2f   |   LEGW @ 1x epochs: %.2f\n",
                tune.best_metric, legw_result.final_metric);
  }

  std::printf(
      "\nShape check (paper Fig. 8): LEGW at the standard epoch budget\n"
      "remains competitive with (or beats) every longer-trained tuned\n"
      "baseline — the large-batch gap is not closed by training longer.\n");
  return 0;
}
