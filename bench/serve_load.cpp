// Closed-loop serving load generator (docs/SERVING.md).
//
// Saves the canonical mnist-lstm bench model as a checkpoint, loads it into
// a ServeSession, then sweeps RequestBroker settings (batch_cap x
// deadline_ms) under N closed-loop clients: each client submits one request,
// waits for its future, and immediately submits the next. Per-request
// latency is the broker's own enqueue->done span; throughput is resolved
// requests over the sweep's wall time. Emits BENCH_serve.json, one row per
// setting, with p50/p95/p99 latency, throughput, and batch-formation stats
// from the serve.* counters.
//
// Usage: serve_load [--out BENCH_serve.json] [--clients 8] [--workers 2]
//                   [--requests 200] [--trace t.json]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "ckpt/checkpoint.hpp"
#include "core/flags.hpp"
#include "core/io.hpp"
#include "core/rng.hpp"
#include "serve/broker.hpp"

namespace {

using legw::i64;
using legw::u64;
namespace bench = legw::bench;
namespace serve = legw::serve;

struct Setting {
  i64 batch_cap;
  i64 deadline_ms;
};

struct Row {
  Setting setting;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double throughput_rps = 0.0;
  i64 requests = 0;
  i64 batches = 0;
  double avg_batch_rows = 0.0;
};

double percentile(const std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(p / 100.0 *
                                            static_cast<double>(sorted_ms.size()));
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

serve::Request make_request(u64 id, legw::core::Rng& rng) {
  serve::Request req;
  req.id = id;
  req.features.resize(28 * 28);
  for (float& v : req.features) {
    v = static_cast<float>(rng.uniform(0.0, 1.0));
  }
  return req;
}

Row run_setting(const serve::ServeSession& session, const Setting& setting,
                int clients, int workers, int requests_per_client) {
  serve::BrokerConfig cfg;
  cfg.workers = workers;
  cfg.policy.batch_cap = setting.batch_cap;
  cfg.policy.deadline_ms = setting.deadline_ms;

  const serve::BrokerCounters before = serve::RequestBroker::counters();
  serve::RequestBroker broker(session, cfg);

  std::vector<std::vector<double>> latencies_ms(
      static_cast<std::size_t>(clients));
  const auto t0 = std::chrono::steady_clock::now();
  {
    // lint-allow: raw-thread — the closed-loop clients ARE the workload
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      pool.emplace_back([&, c] {
        legw::core::Rng rng(static_cast<u64>(1000 + c));
        auto& lat = latencies_ms[static_cast<std::size_t>(c)];
        lat.reserve(static_cast<std::size_t>(requests_per_client));
        for (int i = 0; i < requests_per_client; ++i) {
          const u64 id = static_cast<u64>(c * requests_per_client + i);
          serve::Response r = broker.submit(make_request(id, rng)).get();
          LEGW_CHECK(r.status == serve::Status::kOk,
                     "serve_load: request failed: " + r.message);
          lat.push_back(static_cast<double>(r.done_ns - r.enqueue_ns) / 1e6);
        }
      });
    }
    for (auto& t : pool) t.join();
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  broker.shutdown();
  const serve::BrokerCounters after = serve::RequestBroker::counters();

  std::vector<double> all;
  for (const auto& lat : latencies_ms) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  std::sort(all.begin(), all.end());

  Row row;
  row.setting = setting;
  row.requests = static_cast<i64>(all.size());
  row.p50_ms = percentile(all, 50.0);
  row.p95_ms = percentile(all, 95.0);
  row.p99_ms = percentile(all, 99.0);
  row.throughput_rps = static_cast<double>(all.size()) / wall_s;
  row.batches = after.batches - before.batches;
  row.avg_batch_rows =
      row.batches > 0 ? static_cast<double>(after.batch_rows -
                                            before.batch_rows) /
                            static_cast<double>(row.batches)
                      : 0.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ScopedTrace scoped_trace(argc, argv);
  legw::core::Flags flags(argc, argv);
  const std::string out_path = flags.get_string("out", "BENCH_serve.json");
  const int clients = static_cast<int>(flags.get_int("clients", 8));
  const int workers = static_cast<int>(flags.get_int("workers", 2));
  const int requests_per_client =
      static_cast<int>(flags.get_int("requests", 200));

  // The canonical bench model, published through the real checkpoint path so
  // the bench covers save -> serve load end to end.
  bench::MnistWorkload w;
  legw::models::MnistLstm model(w.model);
  legw::ckpt::TrainState state;
  state.models.push_back(&model);
  state.step = 1;
  const std::string dir = "bench_serve_tmp";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string ckpt_path = dir + "/model.legw";
  const auto saved = legw::ckpt::save(state, ckpt_path);
  LEGW_CHECK(saved.ok(), "serve_load: save failed: " + saved.message);

  serve::SessionConfig sc;
  sc.kind = serve::ModelKind::kMnistLstm;
  sc.mnist.transform_dim = w.model.transform_dim;
  sc.mnist.hidden_dim = w.model.hidden_dim;
  std::unique_ptr<serve::ServeSession> session;
  const auto loaded = serve::ServeSession::load(sc, ckpt_path, &session);
  LEGW_CHECK(loaded.ok(), "serve_load: load failed: " + loaded.message);

  // cap=1/deadline=0 is the no-batching baseline; the rest trade queueing
  // delay for batch formation.
  const std::vector<Setting> grid = {
      {1, 0}, {8, 0}, {8, 2}, {32, 2}, {32, 10},
  };

  std::printf("serve_load: %d clients x %d requests, %d workers\n", clients,
              requests_per_client, workers);
  std::printf("%6s %11s %9s %9s %9s %11s %8s %9s\n", "cap", "deadline_ms",
              "p50_ms", "p95_ms", "p99_ms", "rps", "batches", "rows/bat");

  std::string body = "[\n";
  char buf[512];
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const Row row =
        run_setting(*session, grid[i], clients, workers, requests_per_client);
    std::printf("%6lld %11lld %9.3f %9.3f %9.3f %11.1f %8lld %9.2f\n",
                static_cast<long long>(row.setting.batch_cap),
                static_cast<long long>(row.setting.deadline_ms), row.p50_ms,
                row.p95_ms, row.p99_ms, row.throughput_rps,
                static_cast<long long>(row.batches), row.avg_batch_rows);
    std::snprintf(buf, sizeof buf,
                  "  {\"batch_cap\": %lld, \"deadline_ms\": %lld, "
                  "\"clients\": %d, \"workers\": %d, \"requests\": %lld, "
                  "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f, "
                  "\"throughput_rps\": %.2f, \"batches\": %lld, "
                  "\"avg_batch_rows\": %.3f}%s\n",
                  static_cast<long long>(row.setting.batch_cap),
                  static_cast<long long>(row.setting.deadline_ms), clients,
                  workers, static_cast<long long>(row.requests), row.p50_ms,
                  row.p95_ms, row.p99_ms, row.throughput_rps,
                  static_cast<long long>(row.batches), row.avg_batch_rows,
                  i + 1 < grid.size() ? "," : "");
    body += buf;
  }
  body += "]\n";

  const legw::core::Status st = legw::core::atomic_write_file(out_path, body);
  LEGW_CHECK(st.ok(), "serve_load: " + st.message());
  std::printf("wrote %s\n", out_path.c_str());

  std::filesystem::remove_all(dir);
  return 0;
}
