// Ablation: which part of LEGW matters? Fixes the Sqrt-scaled peak LR and
// varies only the warmup policy across batch sizes (MNIST-LSTM):
//   none              — sqrt LR, no warmup at all
//   constant-epoch    — warmup epochs fixed at the baseline value (w0)
//   constant-iteration— warmup *iterations* fixed (epochs shrink as 1/k...
//                       wait, epochs = w0 regardless of k in epoch units;
//                       in iteration units this is w0 * steps(k) — see note)
//   linear-epoch      — LEGW: warmup epochs w0 * k
//
// Note on units: one epoch at batch k*B0 contains 1/k as many iterations,
// so "linear-epoch" warmup keeps the *iteration count* of the warmup phase
// constant across batch sizes, while "constant-epoch" warmup shrinks it by
// k. That is the paper's core observation (§3, Table 2's fixed 200 warmup
// iterations).
#include <cstdio>
#include <memory>

#include "bench_common.hpp"

using namespace legw;

int main(int argc, char** argv) {
  bench::ScopedTrace scoped_trace(argc, argv);
  bench::print_header("Ablation: warmup policy at fixed sqrt-scaled LR",
                      "DESIGN.md ablation #2/#3 (supports paper §3)");
  bench::MnistWorkload w;
  const double w0 = w.legw_base.warmup_epochs;

  struct Policy {
    const char* name;
    std::function<double(double k)> warmup_epochs;
  };
  const std::vector<Policy> policies = {
      {"no warmup", [](double) { return 0.0; }},
      {"constant-epoch (w0)", [&](double) { return w0; }},
      {"linear-epoch (LEGW, w0*k)", [&](double k) { return w0 * k; }},
      {"quadratic-epoch (w0*k^2)", [&](double k) { return w0 * k * k; }},
  };
  const std::vector<i64> batches = {32, 64, 128, 256, 512};

  std::printf("%-28s", "policy \\ batch");
  for (i64 b : batches) std::printf(" %9lld", static_cast<long long>(b));
  std::printf("\n");
  bench::print_row_divider(28 + 10 * static_cast<int>(batches.size()));

  for (const auto& policy : policies) {
    std::printf("%-28s", policy.name);
    std::fflush(stdout);
    for (i64 batch : batches) {
      const double k = static_cast<double>(batch) / w.base_batch;
      const float peak =
          sched::sqrt_scaling(w.legw_base.peak_lr, w.base_batch, batch);
      sched::GradualWarmup schedule(policy.warmup_epochs(k),
                                    std::make_shared<sched::ConstantLr>(peak));
      train::RunConfig run;
      run.batch_size = batch;
      run.epochs = w.epochs;
      run.optimizer = "momentum";
      run.schedule = &schedule;
      run.final_eval_only = true;
      auto r = train::train_mnist(w.dataset, w.model, run);
      char buf[32];
      std::printf(" %9s",
                  bench::fmt_metric(r.final_metric, r.diverged, buf, sizeof buf));
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf(
      "\nShape check: linear-epoch warmup dominates at large batch — no\n"
      "warmup destabilises, constant-epoch warms too briefly (its iteration\n"
      "count shrinks as 1/k), quadratic wastes too much of training in\n"
      "warmup. LEGW is the sweet spot the paper identifies.\n");
  return 0;
}
