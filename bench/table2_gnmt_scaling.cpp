// Table 2: LEGW scales GNMT training from the base batch by 16x without
// losing BLEU. Paper: batch 256..4K, LR 2^-0.5/1e3..2^1.5/1e3, warmup
// 0.0145..0.232 epochs, BLEU flat at ~22. Here: batch 16..256 (same k
// range), synthetic translation task, Adam as the underlying solver.
#include <cstdio>

#include "bench_common.hpp"
#include "core/flags.hpp"
#include "dist/cluster_model.hpp"

using namespace legw;

int main(int argc, char** argv) {
  bench::ScopedTrace scoped_trace(argc, argv);
  bench::print_header("Table 2: GNMT batch scaling with LEGW",
                      "paper Table 2");
  bench::GnmtWorkload w;

  std::printf("%10s %12s %14s %10s %10s\n", "batch", "init LR",
              "warmup epochs", "BLEU", "secs");
  bench::print_row_divider(62);

  double base_bleu = 0.0;
  for (i64 batch : {16, 32, 64, 128, 256}) {
    const auto recipe = sched::legw_scale(w.legw_base, batch);
    auto schedule = sched::legw_constant(w.legw_base, batch);
    train::RunConfig run;
    run.batch_size = batch;
    run.epochs = w.epochs;
    run.optimizer = "adam";
    run.schedule = schedule.get();
    run.final_eval_only = true;
    auto result = train::train_gnmt(w.dataset, w.model, run);

    char buf[32];
    std::printf("%10lld %12.6f %14.4f %10s %10.1f\n",
                static_cast<long long>(batch), recipe.peak_lr,
                recipe.warmup_epochs,
                bench::fmt_metric(result.final_metric, result.diverged, buf,
                                  sizeof buf),
                result.wall_seconds);
    if (batch == 16) base_bleu = result.final_metric;
  }
  std::printf(
      "\nShape check (paper): BLEU stays near the baseline (%.2f here)\n"
      "while batch scales 16x; LR follows the sqrt rule, warmup epochs the\n"
      "linear-epoch rule (so warmup *iterations* stay constant, cf. the\n"
      "paper's fixed 200 warmup iterations).\n",
      base_bleu);

  // Large-batch GNMT is where the paper runs on pods; show what the
  // overlap-aware cluster model predicts for the sweep's largest batch.
  dist::ClusterConfig cluster;
  cluster.device = {1000.0, 64.0};
  cluster.max_batch_per_worker = 64;
  const auto seq = dist::cluster_epoch_time(cluster, 100000, 256,
                                            dist::CommMode::kSequential);
  const auto ovl = dist::cluster_epoch_time(cluster, 100000, 256,
                                            dist::CommMode::kOverlapped);
  std::printf(
      "\ncluster model at batch 256 (%lld workers, LEGW_DIST=%s locally):\n"
      "  epoch %.2fs with sequential allreduce, %.2fs with comm/compute\n"
      "  overlap (%.2fx) — see bench/dist_scaling.cpp for the measured\n"
      "  engine-level counterpart.\n",
      static_cast<long long>(seq.workers),
      core::dist_mode_name(core::dist_mode()), seq.epoch_seconds,
      ovl.epoch_seconds, seq.epoch_seconds / ovl.epoch_seconds);
  return 0;
}
