// Figure 5: carefully-tuned Adam beats the classic manual tuning recipes as
// batch size grows. MNIST-LSTM; recipes (paper Fig. 5.1-5.4):
//   5.1 constant eta0 (tuned at the base batch, reused everywhere)
//   5.2 linear scaling: eta0 * B/B0
//   5.3 linear scaling + poly decay (power 2)
//   5.4 linear scaling + poly decay + 5-epoch warmup
// versus Adam with its LR tuned per batch over the paper's grid.
#include <cstdio>
#include <memory>

#include "analysis/tuning.hpp"
#include "bench_common.hpp"

using namespace legw;

int main(int argc, char** argv) {
  bench::ScopedTrace scoped_trace(argc, argv);
  bench::print_header("Figure 5: Adam vs existing tuning techniques",
                      "paper Figure 5 (MNIST-LSTM)");
  bench::MnistWorkload w;
  const double total_epochs = static_cast<double>(w.epochs);
  const float eta0 = w.legw_base.peak_lr;  // tuned baseline LR

  const std::vector<i64> batches = {32, 64, 128, 256, 512};

  auto run_with = [&](i64 batch, const sched::LrSchedule& schedule,
                      const std::string& solver) {
    train::RunConfig run;
    run.batch_size = batch;
    run.epochs = w.epochs;
    run.optimizer = solver;
    run.schedule = &schedule;
      run.final_eval_only = true;
    return train::train_mnist(w.dataset, w.model, run);
  };

  std::printf("%-34s", "method \\ batch");
  for (i64 b : batches) std::printf(" %9lld", static_cast<long long>(b));
  std::printf("\n");
  bench::print_row_divider(34 + 10 * static_cast<int>(batches.size()));

  // 5.1 constant eta0.
  std::printf("%-34s", "5.1 constant eta0 (momentum)");
  std::fflush(stdout);
  for (i64 batch : batches) {
    sched::ConstantLr s(eta0);
    auto r = run_with(batch, s, "momentum");
    char buf[32];
    std::printf(" %9s", bench::fmt_metric(r.final_metric, r.diverged, buf, sizeof buf));
    std::fflush(stdout);
  }
  std::printf("\n");

  // 5.2 linear scaling.
  std::printf("%-34s", "5.2 linear scaling");
  std::fflush(stdout);
  for (i64 batch : batches) {
    sched::ConstantLr s(sched::linear_scaling(eta0, w.base_batch, batch));
    auto r = run_with(batch, s, "momentum");
    char buf[32];
    std::printf(" %9s", bench::fmt_metric(r.final_metric, r.diverged, buf, sizeof buf));
    std::fflush(stdout);
  }
  std::printf("\n");

  // 5.3 linear scaling + poly decay.
  std::printf("%-34s", "5.3 linear + poly(2) decay");
  std::fflush(stdout);
  for (i64 batch : batches) {
    sched::PolynomialLr s(sched::linear_scaling(eta0, w.base_batch, batch),
                          total_epochs, 2.0f);
    auto r = run_with(batch, s, "momentum");
    char buf[32];
    std::printf(" %9s", bench::fmt_metric(r.final_metric, r.diverged, buf, sizeof buf));
    std::fflush(stdout);
  }
  std::printf("\n");

  // 5.4 linear + poly + constant-epoch warmup.
  std::printf("%-34s", "5.4 linear + poly + const wu");
  std::fflush(stdout);
  for (i64 batch : batches) {
    // Paper uses 5 epochs of 90; proportionally ~0.2 of our short budget.
    sched::GradualWarmup s(
        0.05 * total_epochs,
        std::make_shared<sched::PolynomialLr>(
            sched::linear_scaling(eta0, w.base_batch, batch), total_epochs,
            2.0f));
    auto r = run_with(batch, s, "momentum");
    char buf[32];
    std::printf(" %9s", bench::fmt_metric(r.final_metric, r.diverged, buf, sizeof buf));
    std::fflush(stdout);
  }
  std::printf("\n");

  // Adam, LR tuned per batch (paper grid: {1e-4 .. 1e-3}).
  std::printf("%-34s", "Adam (LR tuned per batch)");
  std::fflush(stdout);
  for (i64 batch : batches) {
    auto grid = analysis::geometric_grid(1e-4f, 2e-3f, 4);
    auto tune = analysis::grid_search_lr(
        grid,
        [&](float lr) {
          sched::ConstantLr s(lr);
          auto r = run_with(batch, s, "adam");
          return std::make_pair(r.final_metric, r.diverged);
        },
        /*higher_better=*/true);
    char buf[32];
    std::printf(" %9s", bench::fmt_metric(tune.best_metric, false, buf, sizeof buf));
    std::fflush(stdout);
  }
  std::printf("\n");

  std::printf(
      "\nShape check (paper Fig. 5): the fixed recipes fall off (or diverge)\n"
      "as batch grows — 5.2's linearly-scaled LR without warmup is worst —\n"
      "while tuned Adam stays high across the sweep.\n");
  return 0;
}
