// Kernel performance baseline: times gemm_ref vs gemm_blocked over the GEMM
// shapes the real models hit (square sweeps, LSTM gate matmuls, GNMT
// attention, ResNet im2col) plus the fused LSTM cell, and emits
// BENCH_kernels.json so future PRs can track per-shape GFLOP/s regressions.
//
// Usage: perf_baseline [--out BENCH_kernels.json] [--reps N] [--min-ms M]
// See docs/KERNELS.md for how to read the output.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "ag/ops.hpp"
#include "bench_common.hpp"
#include "core/flags.hpp"
#include "core/io.hpp"
#include "core/tensor.hpp"
#include "core/thread_pool.hpp"
#include "mem/alloc.hpp"
#include "nn/lstm.hpp"
#include "obs/trace.hpp"

namespace {

using namespace legw;
using core::Rng;
using core::Tensor;

struct GemmShape {
  const char* name;
  i64 m, n, k;
  bool trans_a, trans_b;
};

// Shapes mirror the models' hot GEMMs:
//  - lstm_gates_*: [B, I+H] x [I+H, 4H] gate matmul (mnist/PTB/GNMT cells)
//  - lstm_dw_*:    trans_a weight-gradient GEMM of the same cell
//  - attn_*:       GNMT Bahdanau attention score/context matmuls
//  - im2col_*:     ResNet 3x3 conv lowered to [Cout, C*9] x [C*9, OH*OW]
const GemmShape kShapes[] = {
    {"square_64", 64, 64, 64, false, false},
    {"square_128", 128, 128, 128, false, false},
    {"square_256", 256, 256, 256, false, false},
    {"square_512", 512, 512, 512, false, false},
    {"lstm_gates_b32_h128", 32, 512, 256, false, false},
    {"lstm_gates_b128_h256", 128, 1024, 512, false, false},
    {"lstm_gates_b512_h512", 512, 2048, 1024, false, false},
    {"lstm_dw_b128_h256", 512, 1024, 128, true, false},
    {"attn_scores_b64_t32_h256", 64, 32, 256, false, true},
    {"attn_context_b64_t32_h256", 64, 256, 32, false, false},
    {"im2col_c64_hw32", 64, 1024, 576, false, false},
    {"im2col_c128_hw16", 128, 256, 1152, false, false},
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Runs fn repeatedly until both `reps` iterations and `min_ms` of wall time
// have elapsed; returns mean seconds per iteration.
template <typename Fn>
double time_loop(Fn&& fn, int reps, double min_ms) {
  fn();  // warm-up (first call pays allocator/pool setup)
  int done = 0;
  const double t0 = now_seconds();
  double elapsed = 0.0;
  do {
    fn();
    ++done;
    elapsed = now_seconds() - t0;
  } while (done < reps || elapsed * 1e3 < min_ms);
  return elapsed / done;
}

double gemm_gflops(const GemmShape& s, core::GemmKernel kernel, int reps,
                   double min_ms) {
  Rng rng(42);
  const i64 a_rows = s.trans_a ? s.k : s.m;
  const i64 a_cols = s.trans_a ? s.m : s.k;
  const i64 b_rows = s.trans_b ? s.n : s.k;
  const i64 b_cols = s.trans_b ? s.k : s.n;
  Tensor a = Tensor::randn({a_rows, a_cols}, rng);
  Tensor b = Tensor::randn({b_rows, b_cols}, rng);
  Tensor c = Tensor::zeros({s.m, s.n});
  auto run = [&] {
    if (kernel == core::GemmKernel::kRef) {
      core::gemm_ref(s.trans_a, s.trans_b, s.m, s.n, s.k, 1.0f, a.data(),
                     a_cols, b.data(), b_cols, 0.0f, c.data(), s.n);
    } else {
      core::gemm_blocked(s.trans_a, s.trans_b, s.m, s.n, s.k, 1.0f, a.data(),
                         a_cols, b.data(), b_cols, 0.0f, c.data(), s.n);
    }
  };
  const double sec = time_loop(run, reps, min_ms);
  return 2.0 * s.m * s.n * s.k / sec / 1e9;
}

struct LstmResult {
  i64 batch, hidden;
  double fused_steps_per_s = 0.0;
  double composed_steps_per_s = 0.0;
};

LstmResult lstm_cell_rate(i64 batch, i64 hidden, int reps, double min_ms) {
  LstmResult res{batch, hidden, 0.0, 0.0};
  for (bool fused : {true, false}) {
    Rng rng(7);
    nn::LstmCellLayer layer(hidden, hidden, rng, 1.0f, fused);
    ag::Variable x =
        ag::Variable::constant(Tensor::randn({batch, hidden}, rng));
    auto run = [&] {
      layer.zero_grad();
      nn::LstmState s = layer.step(x, layer.zero_state(batch));
      ag::backward(ag::sum_all(s.h));
    };
    const double sec = time_loop(run, reps, min_ms);
    (fused ? res.fused_steps_per_s : res.composed_steps_per_s) = 1.0 / sec;
  }
  return res;
}

// Memory characterisation: one fused-LSTM training step over a 20-timestep
// unrolled sequence (the paper's PTB-small BPTT length) under each storage
// mode. The malloc row is the seed behaviour — every interior value and
// gradient stays live until the graph drops after backward, so the peak
// holds all T timesteps of activations AND gradients at once. The arena row
// opens a mem::TrainStepScope: interior buffers are freed the moment their
// backward closure has run, and steps 2+ replay the recorded static plan in
// place. peak_step_bytes counts the transient bytes live above the pre-step
// baseline (heap + arena, so both modes are measured with the same ruler);
// planned/naive report how far the plan compresses a no-reuse bump
// footprint.
constexpr i64 kMemBenchSeqLen = 20;

struct MemResult {
  i64 batch, hidden;
  double malloc_steps_per_s = 0.0;
  double arena_steps_per_s = 0.0;
  i64 malloc_peak_step_bytes = 0;
  i64 arena_peak_step_bytes = 0;
  i64 arena_planned_bytes = 0;
  i64 arena_naive_bytes = 0;
};

MemResult memory_rate(i64 batch, i64 hidden, int reps, double min_ms) {
  MemResult res;
  res.batch = batch;
  res.hidden = hidden;
  const mem::AllocMode saved = mem::alloc_mode();
  for (mem::AllocMode mode : {mem::AllocMode::kMalloc, mem::AllocMode::kArena}) {
    mem::set_alloc_mode(mode);
    Rng rng(7);
    nn::LstmCellLayer layer(hidden, hidden, rng, 1.0f, /*fused=*/true);
    ag::Variable x =
        ag::Variable::constant(Tensor::randn({batch, hidden}, rng));
    auto run = [&] {
      mem::TrainStepScope scope;
      layer.zero_grad();
      nn::LstmState s = layer.zero_state(batch);
      for (i64 t = 0; t < kMemBenchSeqLen; ++t) s = layer.step(x, s);
      ag::backward(ag::sum_all(s.h));
    };
    const double sec = time_loop(run, reps, min_ms);
    // Peak of one isolated step, measured from the settled baseline (leaf
    // grads and parameters are live in both modes and cancel out).
    mem::reset_mem_peaks();
    const mem::MemStats base = mem::mem_stats();
    run();
    const mem::MemStats after = mem::mem_stats();
    const i64 peak = (after.heap_peak_bytes - base.heap_live_bytes) +
                     (after.arena_peak_bytes - base.arena_live_bytes);
    if (mode == mem::AllocMode::kMalloc) {
      res.malloc_steps_per_s = 1.0 / sec;
      res.malloc_peak_step_bytes = peak;
    } else {
      res.arena_steps_per_s = 1.0 / sec;
      res.arena_peak_step_bytes = peak;
      res.arena_planned_bytes = after.arena_planned_bytes;
      res.arena_naive_bytes = after.arena_naive_bytes;
    }
  }
  mem::set_alloc_mode(saved);
  return res;
}

// Re-runs every shape a few times under tracing so the phase summary in the
// output JSON has per-kernel rows. Kept separate from the timed loops above:
// those run with tracing in its default (disabled) state so the reported
// GFLOP/s stay comparable against older baselines.
void traced_characterisation_pass(int reps) {
  for (const GemmShape& s : kShapes) {
    Rng rng(42);
    const i64 a_rows = s.trans_a ? s.k : s.m;
    const i64 a_cols = s.trans_a ? s.m : s.k;
    const i64 b_rows = s.trans_b ? s.n : s.k;
    const i64 b_cols = s.trans_b ? s.k : s.n;
    Tensor a = Tensor::randn({a_rows, a_cols}, rng);
    Tensor b = Tensor::randn({b_rows, b_cols}, rng);
    Tensor c = Tensor::zeros({s.m, s.n});
    for (int r = 0; r < reps; ++r) {
      {
        obs::Span span("gemm.ref");
        core::gemm_ref(s.trans_a, s.trans_b, s.m, s.n, s.k, 1.0f, a.data(),
                       a_cols, b.data(), b_cols, 0.0f, c.data(), s.n);
      }
      obs::Span span("gemm.blocked");
      core::gemm_blocked(s.trans_a, s.trans_b, s.m, s.n, s.k, 1.0f, a.data(),
                         a_cols, b.data(), b_cols, 0.0f, c.data(), s.n);
    }
  }
  for (const auto& [batch, hidden] :
       std::vector<std::pair<i64, i64>>{{32, 128}, {128, 128}, {128, 512}}) {
    for (bool fused : {true, false}) {
      Rng rng(7);
      nn::LstmCellLayer layer(hidden, hidden, rng, 1.0f, fused);
      ag::Variable x =
          ag::Variable::constant(Tensor::randn({batch, hidden}, rng));
      for (int r = 0; r < reps; ++r) {
        obs::Span span(fused ? "lstm_cell.fused" : "lstm_cell.composed");
        layer.zero_grad();
        nn::LstmState s = layer.step(x, layer.zero_state(batch));
        ag::backward(ag::sum_all(s.h));
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::ScopedTrace scoped_trace(argc, argv);
  core::Flags flags(argc, argv);
  const std::string out_path =
      flags.get_string("out", "BENCH_kernels.json");
  const int reps = static_cast<int>(flags.get_int("reps", 5));
  const double min_ms = flags.get_double("min-ms", 50.0);

  core::AtomicFile out(out_path);
  LEGW_CHECK(out.ok(), "perf_baseline: cannot open " + out_path);
  std::FILE* f = out.stream();

  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"threads\": %d,\n", core::ThreadPool::global().size());
  std::fprintf(f, "  \"gemm\": [\n");
  const std::size_t n_shapes = sizeof(kShapes) / sizeof(kShapes[0]);
  for (std::size_t i = 0; i < n_shapes; ++i) {
    const GemmShape& s = kShapes[i];
    const double ref =
        gemm_gflops(s, core::GemmKernel::kRef, reps, min_ms);
    const double blocked =
        gemm_gflops(s, core::GemmKernel::kBlocked, reps, min_ms);
    std::printf("gemm %-28s m=%-4lld n=%-4lld k=%-4lld %sx%s  "
                "ref %7.2f GF/s  blocked %7.2f GF/s  speedup %.2fx\n",
                s.name, static_cast<long long>(s.m),
                static_cast<long long>(s.n), static_cast<long long>(s.k),
                s.trans_a ? "T" : "N", s.trans_b ? "T" : "N", ref, blocked,
                blocked / ref);
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"m\": %lld, \"n\": %lld, \"k\": %lld, "
        "\"trans_a\": %s, \"trans_b\": %s, \"ref_gflops\": %.3f, "
        "\"blocked_gflops\": %.3f, \"speedup\": %.3f}%s\n",
        s.name, static_cast<long long>(s.m), static_cast<long long>(s.n),
        static_cast<long long>(s.k), s.trans_a ? "true" : "false",
        s.trans_b ? "true" : "false", ref, blocked, blocked / ref,
        i + 1 < n_shapes ? "," : "");
  }
  std::fprintf(f, "  ],\n");

  std::fprintf(f, "  \"lstm_cell\": [\n");
  const std::vector<std::pair<i64, i64>> lstm_shapes = {
      {32, 128}, {128, 128}, {128, 512}};
  for (std::size_t i = 0; i < lstm_shapes.size(); ++i) {
    const LstmResult r =
        lstm_cell_rate(lstm_shapes[i].first, lstm_shapes[i].second, reps,
                       min_ms);
    std::printf("lstm_cell b=%-4lld h=%-4lld  fused %9.1f step/s  "
                "composed %9.1f step/s  speedup %.2fx\n",
                static_cast<long long>(r.batch),
                static_cast<long long>(r.hidden), r.fused_steps_per_s,
                r.composed_steps_per_s,
                r.fused_steps_per_s / r.composed_steps_per_s);
    std::fprintf(f,
                 "    {\"batch\": %lld, \"hidden\": %lld, "
                 "\"fused_steps_per_s\": %.2f, \"composed_steps_per_s\": "
                 "%.2f, \"speedup\": %.3f}%s\n",
                 static_cast<long long>(r.batch),
                 static_cast<long long>(r.hidden), r.fused_steps_per_s,
                 r.composed_steps_per_s,
                 r.fused_steps_per_s / r.composed_steps_per_s,
                 i + 1 < lstm_shapes.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");

  // Memory: fused-LSTM train step, LEGW_ALLOC=arena vs malloc (see
  // memory_rate's doc comment; docs/MEMORY.md explains the columns).
  std::fprintf(f, "  \"memory\": [\n");
  const std::vector<std::pair<i64, i64>> mem_shapes = {
      {32, 128}, {128, 128}, {512, 256}};
  for (std::size_t i = 0; i < mem_shapes.size(); ++i) {
    const MemResult r = memory_rate(mem_shapes[i].first, mem_shapes[i].second,
                                    reps, min_ms);
    const double peak_reduction =
        1.0 - static_cast<double>(r.arena_peak_step_bytes) /
                  static_cast<double>(r.malloc_peak_step_bytes);
    std::printf("memory b=%-4lld h=%-4lld  malloc %8.1f step/s %8.2f MiB  "
                "arena %8.1f step/s %8.2f MiB  peak -%4.1f%%  plan %.2f MiB "
                "(naive %.2f)\n",
                static_cast<long long>(r.batch),
                static_cast<long long>(r.hidden), r.malloc_steps_per_s,
                static_cast<double>(r.malloc_peak_step_bytes) / 1048576.0,
                r.arena_steps_per_s,
                static_cast<double>(r.arena_peak_step_bytes) / 1048576.0,
                100.0 * peak_reduction,
                static_cast<double>(r.arena_planned_bytes) / 1048576.0,
                static_cast<double>(r.arena_naive_bytes) / 1048576.0);
    std::fprintf(f,
                 "    {\"batch\": %lld, \"hidden\": %lld, \"seq\": %lld, "
                 "\"malloc_steps_per_s\": %.2f, \"arena_steps_per_s\": %.2f, "
                 "\"speedup\": %.3f, \"malloc_peak_step_bytes\": %lld, "
                 "\"arena_peak_step_bytes\": %lld, \"peak_reduction\": %.3f, "
                 "\"arena_planned_bytes\": %lld, \"arena_naive_bytes\": "
                 "%lld}%s\n",
                 static_cast<long long>(r.batch),
                 static_cast<long long>(r.hidden),
                 static_cast<long long>(kMemBenchSeqLen), r.malloc_steps_per_s,
                 r.arena_steps_per_s,
                 r.arena_steps_per_s / r.malloc_steps_per_s,
                 static_cast<long long>(r.malloc_peak_step_bytes),
                 static_cast<long long>(r.arena_peak_step_bytes),
                 peak_reduction,
                 static_cast<long long>(r.arena_planned_bytes),
                 static_cast<long long>(r.arena_naive_bytes),
                 i + 1 < mem_shapes.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");

  // Phase summary: short traced re-run of every shape (see the helper's doc
  // comment — the timed numbers above are collected with tracing disabled).
  const bool was_enabled = obs::tracing_enabled();
  auto& rec = obs::TraceRecorder::global();
  obs::set_tracing_enabled(true);
  rec.clear();
  traced_characterisation_pass(3);
  obs::set_tracing_enabled(was_enabled);

  const auto phases = rec.phase_summary();
  std::fprintf(f, "  \"phases\": {\n");
  std::size_t pi = 0;
  for (const auto& [name, st] : phases) {
    std::fprintf(f,
                 "    \"%s\": {\"count\": %lld, \"total_ms\": %.4f, "
                 "\"mean_ms\": %.5f, \"p50_ms\": %.5f, \"p95_ms\": %.5f}%s\n",
                 name.c_str(), static_cast<long long>(st.count), st.total_ms,
                 st.mean_ms, st.p50_ms, st.p95_ms,
                 ++pi < phases.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  const auto ctrs = rec.counters();
  std::fprintf(f, "  \"counters\": {\n");
  std::size_t ci = 0;
  for (const auto& [name, v] : ctrs) {
    std::fprintf(f, "    \"%s\": %lld%s\n", name.c_str(),
                 static_cast<long long>(v), ++ci < ctrs.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  const legw::core::Status publish = out.commit();
  LEGW_CHECK(publish.ok(), "perf_baseline: " + publish.message());
  if (!was_enabled) rec.clear();
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
