// Substrate micro-benchmarks (google-benchmark): GEMM, fused vs composed
// LSTM cell (the DESIGN.md ablation), conv2d, all-reduce, and the
// end-to-end per-step cost of each model.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.hpp"

#include "ag/ops.hpp"
#include "core/flags.hpp"
#include "data/translation.hpp"
#include "dist/allreduce.hpp"
#include "dist/compression.hpp"
#include "models/gnmt.hpp"
#include "models/mnist_lstm.hpp"
#include "nn/lstm.hpp"

namespace {

using namespace legw;
using core::Rng;
using core::Tensor;

void BM_Gemm(benchmark::State& state) {
  // Production dispatch path (honours LEGW_KERNEL; default blocked).
  const i64 n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = core::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

// Pinned-kernel square GEMM: the ref/blocked A/B that BENCH_kernels.json
// tracks, runnable standalone from the google-benchmark harness.
void BM_GemmKernel(benchmark::State& state, core::GemmKernel kernel) {
  const i64 n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  Tensor c = Tensor::zeros({n, n});
  for (auto _ : state) {
    if (kernel == core::GemmKernel::kRef) {
      core::gemm_ref(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n,
                     0.0f, c.data(), n);
    } else {
      core::gemm_blocked(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n,
                         0.0f, c.data(), n);
    }
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
void BM_GemmRef(benchmark::State& state) {
  BM_GemmKernel(state, core::GemmKernel::kRef);
}
void BM_GemmBlocked(benchmark::State& state) {
  BM_GemmKernel(state, core::GemmKernel::kBlocked);
}
BENCHMARK(BM_GemmRef)->Arg(256)->Arg(512);
BENCHMARK(BM_GemmBlocked)->Arg(256)->Arg(512);

// Model-shaped GEMM sweeps: {m, n, k} via the dispatch path.
//  - LSTM gate matmul [B, I+H] x [I+H, 4H]
//  - GNMT attention scores [B, H] x [H, T] (B rows against T keys)
//  - ResNet im2col [Cout, C*9] x [C*9, OH*OW]
void BM_GemmShape(benchmark::State& state) {
  const i64 m = state.range(0), n = state.range(1), k = state.range(2);
  Rng rng(1);
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  for (auto _ : state) {
    Tensor c = core::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * n * k);
}
BENCHMARK(BM_GemmShape)
    ->Args({32, 512, 256})     // lstm gates, B=32 H=128
    ->Args({128, 1024, 512})   // lstm gates, B=128 H=256
    ->Args({512, 2048, 1024})  // lstm gates, B=512 H=512
    ->Args({64, 32, 256})      // gnmt attention scores, T=32
    ->Args({64, 1024, 576})    // resnet im2col, C=64 32x32
    ->Args({128, 256, 1152});  // resnet im2col, C=128 16x16

void BM_LstmCellFused(benchmark::State& state) {
  const i64 batch = state.range(0), hidden = 128;
  Rng rng(2);
  ag::Variable x = ag::Variable::constant(Tensor::randn({batch, hidden}, rng));
  ag::Variable h = ag::Variable::constant(Tensor::randn({batch, hidden}, rng));
  ag::Variable c = ag::Variable::constant(Tensor::randn({batch, hidden}, rng));
  ag::Variable w =
      ag::Variable::leaf(Tensor::randn({2 * hidden, 4 * hidden}, rng, 0.1f), true);
  ag::Variable b = ag::Variable::leaf(Tensor::zeros({4 * hidden}), true);
  for (auto _ : state) {
    w.zero_grad();
    b.zero_grad();
    ag::Variable out = ag::lstm_cell(x, h, c, w, b);
    // Loss over h only, mirroring the composed benchmark below.
    ag::backward(ag::sum_all(ag::slice_cols(out, 0, hidden)));
    benchmark::DoNotOptimize(w.grad().data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_LstmCellFused)->Arg(32)->Arg(128);

void BM_LstmCellComposed(benchmark::State& state) {
  // The op-by-op reference path: quantifies what fusing the cell buys.
  const i64 batch = state.range(0), hidden = 128;
  Rng rng_f(3);
  nn::LstmCellLayer layer(hidden, hidden, rng_f, 1.0f, /*use_fused=*/false);
  ag::Variable x = ag::Variable::constant(Tensor::randn({batch, hidden}, rng_f));
  for (auto _ : state) {
    layer.zero_grad();
    nn::LstmState s = layer.step(x, layer.zero_state(batch));
    ag::backward(ag::sum_all(s.h));
    benchmark::DoNotOptimize(layer.weight().grad().data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_LstmCellComposed)->Arg(32)->Arg(128);

void BM_Conv2d(benchmark::State& state) {
  const i64 batch = state.range(0);
  Rng rng(4);
  ag::Variable x =
      ag::Variable::constant(Tensor::randn({batch, 16, 16, 16}, rng));
  ag::Variable w = ag::Variable::leaf(Tensor::randn({16, 16, 3, 3}, rng, 0.1f),
                                      true);
  for (auto _ : state) {
    w.zero_grad();
    ag::Variable y = ag::conv2d(x, w, ag::Variable(), 1, 1);
    ag::backward(ag::sum_all(y));
    benchmark::DoNotOptimize(w.grad().data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_Conv2d)->Arg(8)->Arg(32);

void BM_TreeAllreduce(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  Rng rng(5);
  std::vector<Tensor> storage;
  for (int i = 0; i < workers; ++i) {
    storage.push_back(Tensor::randn({1 << 16}, rng));
  }
  for (auto _ : state) {
    std::vector<Tensor*> shards;
    for (auto& t : storage) shards.push_back(&t);
    dist::tree_allreduce_mean(shards);
    benchmark::DoNotOptimize(storage[0].data());
  }
  state.SetBytesProcessed(state.iterations() * workers * (1 << 16) *
                          static_cast<i64>(sizeof(float)));
}
BENCHMARK(BM_TreeAllreduce)->Arg(2)->Arg(8)->Arg(16);

void BM_TreeAllreduceFp16(benchmark::State& state) {
  // Compressed variant: half the wire bytes per hop, software codec cost.
  const int workers = static_cast<int>(state.range(0));
  Rng rng(15);
  std::vector<Tensor> storage;
  for (int i = 0; i < workers; ++i) {
    storage.push_back(Tensor::randn({1 << 16}, rng));
  }
  for (auto _ : state) {
    std::vector<Tensor*> shards;
    for (auto& t : storage) shards.push_back(&t);
    dist::tree_allreduce_mean_fp16(shards);
    benchmark::DoNotOptimize(storage[0].data());
  }
  state.SetBytesProcessed(state.iterations() * workers * (1 << 16) *
                          static_cast<i64>(sizeof(u16)));
}
BENCHMARK(BM_TreeAllreduceFp16)->Arg(2)->Arg(8);

void BM_MnistLstmStep(benchmark::State& state) {
  const i64 batch = state.range(0);
  models::MnistLstmConfig cfg;
  cfg.transform_dim = 64;
  cfg.hidden_dim = 64;
  models::MnistLstm model(cfg);
  Rng rng(6);
  Tensor images = Tensor::rand_uniform({batch, 784}, rng);
  std::vector<i32> labels(static_cast<std::size_t>(batch));
  for (i64 i = 0; i < batch; ++i)
    labels[static_cast<std::size_t>(i)] = static_cast<i32>(i % 10);
  for (auto _ : state) {
    model.zero_grad();
    ag::Variable loss = model.loss(images, labels);
    ag::backward(loss);
    benchmark::DoNotOptimize(loss.value()[0]);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_MnistLstmStep)->Arg(32)->Arg(256);

void BM_GnmtStep(benchmark::State& state) {
  const i64 batch = state.range(0);
  data::TranslationConfig tcfg;
  tcfg.n_train = 512;
  tcfg.src_vocab = 60;
  tcfg.tgt_vocab = 60;
  data::SyntheticTranslation dataset(tcfg);
  models::GnmtConfig cfg;
  cfg.src_vocab = 60;
  cfg.tgt_vocab = 60;
  cfg.embed_dim = 16;
  cfg.hidden_dim = 16;
  cfg.num_layers = 2;
  models::Gnmt model(cfg);
  std::vector<i64> idx;
  for (i64 i = 0; i < batch; ++i) idx.push_back(i);
  auto b = data::make_translation_batch(dataset.train(), idx);
  Rng drng(7);
  for (auto _ : state) {
    model.zero_grad();
    ag::Variable loss = model.loss(b, drng);
    ag::backward(loss);
    benchmark::DoNotOptimize(loss.value()[0]);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_GnmtStep)->Arg(16)->Arg(64);

void BM_GnmtBeamDecode(benchmark::State& state) {
  const i64 beam = state.range(0);
  data::TranslationConfig tcfg;
  tcfg.n_train = 64;
  tcfg.src_vocab = 60;
  tcfg.tgt_vocab = 60;
  data::SyntheticTranslation dataset(tcfg);
  models::GnmtConfig cfg;
  cfg.src_vocab = 60;
  cfg.tgt_vocab = 60;
  cfg.embed_dim = 16;
  cfg.hidden_dim = 16;
  cfg.num_layers = 2;
  models::Gnmt model(cfg);
  model.set_training(false);
  auto b = data::make_translation_batch(dataset.train(), {0, 1, 2, 3});
  for (auto _ : state) {
    auto hyps = model.beam_decode(b, beam, 10);
    benchmark::DoNotOptimize(hyps.data());
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_GnmtBeamDecode)->Arg(1)->Arg(4);

}  // namespace

// Hand-rolled main instead of BENCHMARK_MAIN(): every bench binary must
// accept --trace (ScopedTrace), and google-benchmark rejects flags it does
// not know, so the trace flag is stripped from argv before Initialize.
int main(int argc, char** argv) {
  legw::bench::ScopedTrace trace(argc, argv);
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--trace=", 0) == 0) continue;
    if (a == "--trace") {
      if (i + 1 < argc) ++i;  // skip the path operand too
      continue;
    }
    args.push_back(argv[i]);
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
