// Figure 6: LEGW beats the carefully-tuned Adam baseline across batch sizes
// on all three LSTM applications (MNIST accuracy, PTB perplexity, GNMT BLEU),
// running the same number of epochs.
#include <cstdio>
#include <memory>

#include "analysis/tuning.hpp"
#include "bench_common.hpp"

using namespace legw;

namespace {

void print_table(const char* title, const std::vector<i64>& batches,
                 const std::vector<double>& legw,
                 const std::vector<double>& adam, bool higher_better) {
  std::printf("\n-- %s (%s is better) --\n", title,
              higher_better ? "higher" : "lower");
  std::printf("%-10s", "batch");
  for (i64 b : batches) std::printf(" %9lld", static_cast<long long>(b));
  std::printf("\n%-10s", "LEGW");
  for (double v : legw) std::printf(" %9.4f", v);
  std::printf("\n%-10s", "Adam");
  for (double v : adam) std::printf(" %9.4f", v);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::ScopedTrace scoped_trace(argc, argv);
  bench::print_header("Figure 6: LEGW vs tuned Adam across batch sizes",
                      "paper Figure 6 (MNIST / PTB / GNMT)");

  // ---- 6.1/6.2 MNIST ---------------------------------------------------------
  {
    bench::MnistWorkload w;
    const std::vector<i64> batches = {32, 64, 128, 256, 512};
    std::vector<double> legw_acc, adam_acc;
    // Tune Adam once at the base batch (paper tunes exhaustively; the best
    // LR is then reused — Adam's selling point is insensitivity).
    float adam_lr = 0.0f;
    {
      auto tune = analysis::grid_search_lr(
          analysis::geometric_grid(1e-4f, 2e-3f, 4),
          [&](float lr) {
            sched::ConstantLr s(lr);
            train::RunConfig run;
      run.final_eval_only = true;
            run.batch_size = w.base_batch;
            run.epochs = w.epochs;
            run.optimizer = "adam";
            run.schedule = &s;
            auto r = train::train_mnist(w.dataset, w.model, run);
            return std::make_pair(r.final_metric, r.diverged);
          },
          true);
      adam_lr = tune.best_lr;
    }
    for (i64 batch : batches) {
      auto legw_sched = sched::legw_constant(w.legw_base, batch);
      train::RunConfig run;
      run.final_eval_only = true;
      run.batch_size = batch;
      run.epochs = w.epochs;
      run.optimizer = "momentum";
      run.schedule = legw_sched.get();
      legw_acc.push_back(train::train_mnist(w.dataset, w.model, run).final_metric);

      sched::ConstantLr adam_sched(sched::sqrt_scaling(adam_lr, w.base_batch, batch));
      run.optimizer = "adam";
      run.schedule = &adam_sched;
      adam_acc.push_back(train::train_mnist(w.dataset, w.model, run).final_metric);
    }
    print_table("6.1 MNIST test accuracy", batches, legw_acc, adam_acc, true);
  }

  // ---- 6.3 PTB-small ----------------------------------------------------------
  {
    bench::PtbWorkload w;
    const std::vector<i64> batches = {8, 16, 32, 64};
    std::vector<double> legw_ppl, adam_ppl;
    float adam_lr = 0.0f;
    {
      auto tune = analysis::grid_search_lr(
          analysis::geometric_grid(1e-3f, 1.6e-2f, 4),
          [&](float lr) {
            sched::ConstantLr s(lr);
            train::RunConfig run;
      run.final_eval_only = true;
            run.batch_size = w.base_batch;
            run.epochs = w.epochs;
            run.optimizer = "adam";
            run.schedule = &s;
            auto r = train::train_ptb(w.corpus, w.model, run);
            return std::make_pair(r.final_metric, r.diverged);
          },
          false);
      adam_lr = tune.best_lr;
    }
    for (i64 batch : batches) {
      auto legw_sched = sched::legw_schedule(w.legw_base, batch, [&](float peak) {
        return std::make_shared<sched::ExponentialEpochDecay>(
            peak, w.flat_epochs, w.decay_gamma);
      });
      train::RunConfig run;
      run.final_eval_only = true;
      run.batch_size = batch;
      run.epochs = w.epochs;
      run.optimizer = "momentum";
      run.schedule = legw_sched.get();
      legw_ppl.push_back(train::train_ptb(w.corpus, w.model, run).final_metric);

      sched::ConstantLr adam_sched(sched::sqrt_scaling(adam_lr, w.base_batch, batch));
      run.optimizer = "adam";
      run.schedule = &adam_sched;
      adam_ppl.push_back(train::train_ptb(w.corpus, w.model, run).final_metric);
    }
    print_table("6.3 PTB validation perplexity", batches, legw_ppl, adam_ppl,
                false);
  }

  // ---- 6.4 GNMT ---------------------------------------------------------------
  {
    bench::GnmtWorkload w;
    const std::vector<i64> batches = {16, 32, 64, 128};
    std::vector<double> legw_bleu, adam_bleu;
    for (i64 batch : batches) {
      auto legw_sched = sched::legw_constant(w.legw_base, batch);
      train::RunConfig run;
      run.final_eval_only = true;
      run.batch_size = batch;
      run.epochs = w.epochs;
      run.optimizer = "adam";  // LEGW drives Adam's LR here (paper: Adam base)
      run.schedule = legw_sched.get();
      legw_bleu.push_back(train::train_gnmt(w.dataset, w.model, run).final_metric);

      // Plain Adam with the tuned base LR (no warmup, no scaling).
      sched::ConstantLr adam_sched(w.legw_base.peak_lr);
      run.schedule = &adam_sched;
      adam_bleu.push_back(train::train_gnmt(w.dataset, w.model, run).final_metric);
    }
    print_table("6.4 GNMT test BLEU", batches, legw_bleu, adam_bleu, true);
  }

  std::printf(
      "\nShape check (paper Fig. 6): LEGW matches or beats tuned Adam at\n"
      "every batch size and is notably more stable at the largest batches.\n");
  return 0;
}
