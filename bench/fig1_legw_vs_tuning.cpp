// Figure 1: LEGW keeps accuracy constant as batch size scales, beating the
// previous large-batch tuning recipes (Goyal et al.-style linear scaling with
// constant-epoch warmup). ResNet + LARS, batch 32..1024 (k matches the
// paper's 1K..32K).
#include <cstdio>
#include <memory>

#include "bench_common.hpp"

using namespace legw;

namespace {

struct Method {
  const char* name;
  // Builds the schedule for a given batch size.
  std::function<std::unique_ptr<sched::LrSchedule>(i64 batch)> make;
};

}  // namespace

int main(int argc, char** argv) {
  bench::ScopedTrace scoped_trace(argc, argv);
  bench::print_header(
      "Figure 1: LEGW vs previous large-batch tuning techniques",
      "paper Figure 1 (ResNet50/ImageNet analog)");
  bench::ResnetWorkload w;
  const double total_epochs = static_cast<double>(w.epochs);

  const std::vector<Method> methods = {
      {"LEGW (sqrt LR, linear-ep wu)",
       [&](i64 batch) {
         return sched::legw_schedule(w.legw_base, batch, [&](float peak) {
           return std::make_shared<sched::PolynomialLr>(peak, total_epochs,
                                                        2.0f);
         });
       }},
      {"linear LR + const 0.5ep wu",
       [&](i64 batch) {
         // Goyal et al.: linear scaling, warmup length fixed in epochs.
         const float peak =
             sched::linear_scaling(w.legw_base.peak_lr, w.base_batch, batch);
         return std::make_unique<sched::GradualWarmup>(
             0.5, std::make_shared<sched::PolynomialLr>(peak, total_epochs,
                                                        2.0f));
       }},
      {"linear LR, no warmup",
       [&](i64 batch) {
         const float peak =
             sched::linear_scaling(w.legw_base.peak_lr, w.base_batch, batch);
         return std::make_unique<sched::PolynomialLr>(peak, total_epochs,
                                                      2.0f);
       }},
      {"sqrt LR, no warmup",
       [&](i64 batch) {
         const float peak =
             sched::sqrt_scaling(w.legw_base.peak_lr, w.base_batch, batch);
         return std::make_unique<sched::PolynomialLr>(peak, total_epochs,
                                                      2.0f);
       }},
  };

  const std::vector<i64> batches = w.batch_sweep;

  std::printf("%-30s", "method \\ batch");
  for (i64 b : batches) std::printf(" %9lld", static_cast<long long>(b));
  std::printf("\n");
  bench::print_row_divider(30 + 10 * static_cast<int>(batches.size()));

  for (const auto& method : methods) {
    std::printf("%-30s", method.name);
    std::fflush(stdout);
    for (i64 batch : batches) {
      auto schedule = method.make(batch);
      train::RunConfig run;
      run.final_eval_only = true;
      run.batch_size = batch;
      run.epochs = w.epochs;
      run.optimizer = "lars";
      run.weight_decay = 1e-4f;
      run.schedule = schedule.get();
    run.final_eval_only = true;
      auto result = train::train_resnet(w.dataset, w.model, run);
      char buf[32];
      std::printf(" %9s", bench::fmt_metric(result.final_metric,
                                            result.diverged, buf, sizeof buf));
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf(
      "\nShape check (paper): the LEGW row is flat across the full batch\n"
      "range; the linear-scaling rows degrade (or diverge) at the largest\n"
      "batches because the linearly-scaled LR overshoots.\n");
  return 0;
}
