// Figure 3: the approximate local Lipschitz constant L(x, g) along the
// gradient direction, traced over the first training iterations for several
// batch sizes. The paper's observation: L has an early peak, and the peak
// shifts right (roughly linearly) as batch size grows — the empirical
// justification for linear-epoch warmup.
//
// Measurement detail: training runs at each batch size with the sqrt-scaled
// LR (no warmup — the regime the warmup is meant to fix), while L is probed
// on one fixed held-out batch so traces are comparable across batch sizes.
#include <cstdio>

#include "analysis/curvature.hpp"
#include "bench_common.hpp"
#include "optim/optimizer.hpp"

using namespace legw;

int main(int argc, char** argv) {
  bench::ScopedTrace scoped_trace(argc, argv);
  bench::print_header("Figure 3: local Lipschitz constant vs iteration",
                      "paper Figure 3 (MNIST-LSTM, batch 512..4K analog)");
  bench::MnistWorkload w;
  models::MnistLstmConfig mcfg = w.model;
  mcfg.transform_dim = 24;
  mcfg.hidden_dim = 24;

  const std::vector<i64> batches = {32, 64, 128, 256};
  const int n_iters = 24;

  // Fixed probe batch: L is conditioned on one batch (paper: "approximate it
  // using a small batch").
  std::vector<i64> probe_idx;
  for (i64 i = 0; i < 96; ++i) probe_idx.push_back(i);
  core::Tensor probe_images = w.dataset.gather_images(probe_idx, false);
  std::vector<i32> probe_labels = w.dataset.gather_labels(probe_idx, false);

  std::printf("L(x,g) = |u' H u| with u = g/||g||, H-v product via central\n"
              "finite differences on the gradient (paper §4). Sqrt-scaled LR,\n"
              "no warmup. Every 2nd iteration shown.\n\n");

  for (i64 batch : batches) {
    models::MnistLstm model(mcfg);
    auto opt = optim::make_optimizer("momentum", model.parameters());
    const float lr = sched::sqrt_scaling(w.legw_base.peak_lr, w.base_batch, batch);
    opt->set_lr(lr);
    data::IndexBatcher batcher(w.dataset.n_train(), batch, 1234);

    std::printf("batch %4lld (lr %.3f):", static_cast<long long>(batch), lr);
    auto probe_loss = [&] { return model.loss(probe_images, probe_labels); };
    auto train_step = [&] {
      std::vector<i64> idx = batcher.next();
      model.zero_grad();
      ag::Variable loss = model.loss(w.dataset.gather_images(idx, true),
                                     w.dataset.gather_labels(idx, true));
      ag::backward(loss);
      optim::clip_grad_norm(opt->params(), 5.0f);
      opt->step();
    };
    auto trace = analysis::trace_curvature(model.parameters(), probe_loss,
                                           train_step, n_iters);
    for (std::size_t i = 0; i < trace.values.size(); i += 2) {
      std::printf(" %6.2f", trace.values[i]);
    }
    std::printf("  | peak %.2f @ iter %d\n", trace.peak_value,
                trace.peak_iteration);
  }

  std::printf(
      "\nShape check (paper Fig. 3): each trace rises to an early peak and\n"
      "falls; the peak iteration moves later as batch size grows — larger\n"
      "batches need a longer (linear-in-k) warmup to cover the peak region.\n");
  return 0;
}
