// Figure 10 (appendix): LEGW also beats tuned Adam on the two heavyweight
// applications — PTB-large (LARS + poly decay, per the paper's §5.1.2) and
// GNMT — across batch scales.
#include <cstdio>
#include <memory>

#include "analysis/tuning.hpp"
#include "bench_common.hpp"

using namespace legw;

int main(int argc, char** argv) {
  bench::ScopedTrace scoped_trace(argc, argv);
  bench::print_header("Figure 10: LEGW vs tuned Adam (PTB-large, GNMT)",
                      "paper Figure 10 (appendix)");

  // ---- 10.1 PTB-large: LARS solver + poly decay (paper recipe) -----------------
  {
    bench::PtbWorkload w;
    models::PtbConfig large = models::PtbConfig::large(200);
    large.embed_dim = 96;
    large.hidden_dim = 96;
    large.bptt_len = 12;
    large.dropout = 0.1f;
    const i64 epochs = w.epochs;
    const sched::LegwBaseline legw_base{8, 16.0f, 0.2};  // LARS-scale peak LR
    const std::vector<i64> batches = {8, 32, 64};

    // Tune Adam once at the base batch over the paper's grid.
    float adam_lr;
    {
      auto tune = analysis::grid_search_lr(
          analysis::geometric_grid(2e-3f, 8e-3f, 3),
          [&](float lr) {
            sched::ConstantLr s(lr);
            train::RunConfig run;
      run.final_eval_only = true;
            run.batch_size = 8;
            run.epochs = epochs;
            run.optimizer = "adam";
            run.schedule = &s;
            auto r = train::train_ptb(w.corpus, large, run);
            return std::make_pair(r.final_metric, r.diverged);
          },
          false);
      adam_lr = tune.best_lr;
    }

    std::printf("10.1 PTB-large validation perplexity (lower is better):\n");
    std::printf("%-10s", "batch");
    for (i64 b : batches) std::printf(" %9lld", static_cast<long long>(b));
    std::printf("\n%-10s", "LEGW+LARS");
    std::fflush(stdout);
    for (i64 batch : batches) {
      auto schedule = sched::legw_schedule(legw_base, batch, [&](float peak) {
        return std::make_shared<sched::PolynomialLr>(
            peak, static_cast<double>(epochs), 2.0f);
      });
      train::RunConfig run;
      run.final_eval_only = true;
      run.batch_size = batch;
      run.epochs = epochs;
      run.optimizer = "lars";
      run.weight_decay = 1e-4f;
      run.schedule = schedule.get();
    run.final_eval_only = true;
      auto r = train::train_ptb(w.corpus, large, run);
      std::printf(" %9.2f", r.final_metric);
      std::fflush(stdout);
    }
    std::printf("\n%-10s", "Adam");
    for (i64 batch : batches) {
      sched::ConstantLr s(sched::sqrt_scaling(adam_lr, 8, batch));
      train::RunConfig run;
      run.final_eval_only = true;
      run.batch_size = batch;
      run.epochs = epochs;
      run.optimizer = "adam";
      run.schedule = &s;
      auto r = train::train_ptb(w.corpus, large, run);
      std::printf(" %9.2f", r.final_metric);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  // ---- 10.2 GNMT: LEGW-Adam vs per-batch-tuned Adam ------------------------------
  {
    bench::GnmtWorkload w;
    const std::vector<i64> batches = {32, 64, 128};
    std::printf("\n10.2 GNMT test BLEU (higher is better):\n");
    std::printf("%-10s", "batch");
    for (i64 b : batches) std::printf(" %9lld", static_cast<long long>(b));
    std::printf("\n%-10s", "LEGW");
    std::fflush(stdout);
    for (i64 batch : batches) {
      auto schedule = sched::legw_constant(w.legw_base, batch);
      train::RunConfig run;
      run.final_eval_only = true;
      run.batch_size = batch;
      run.epochs = w.epochs;
      run.optimizer = "adam";
      run.schedule = schedule.get();
    run.final_eval_only = true;
      std::printf(" %9.2f",
                  train::train_gnmt(w.dataset, w.model, run).final_metric);
      std::fflush(stdout);
    }
    std::printf("\n%-10s", "Adam");
    for (i64 batch : batches) {
      auto tune = analysis::grid_search_lr(
          analysis::geometric_grid(5e-3f, 4e-2f, 3),
          [&](float lr) {
            sched::ConstantLr s(lr);
            train::RunConfig run;
      run.final_eval_only = true;
            run.batch_size = batch;
            run.epochs = w.epochs;
            run.optimizer = "adam";
            run.schedule = &s;
            auto r = train::train_gnmt(w.dataset, w.model, run);
            return std::make_pair(r.final_metric, r.diverged);
          },
          true);
      std::printf(" %9.2f", tune.best_metric);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf(
      "\nShape check (paper Fig. 10): LEGW tracks or beats tuned Adam on\n"
      "both heavyweight applications, without per-batch tuning.\n");
  return 0;
}
